/**
 * @file
 * Model of one MEM slice: 20 vertically stacked SRAM tiles providing
 * 8192 x 320-byte words in two pseudo-dual-port banks.
 *
 * The hardware has no arbiters: a bank conflict is a compiler bug, not
 * a runtime stall, so this model *panics* on any access pattern the
 * silicon could not service — one read and one write per cycle, in
 * opposite banks (paper III.B, IV.A).
 */

#ifndef TSP_MEM_MEM_SLICE_HH
#define TSP_MEM_MEM_SLICE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "arch/config.hh"
#include "arch/types.hh"
#include "common/snapshot_io.hh"
#include "mem/addr.hh"
#include "mem/ecc.hh"

namespace tsp {

class FaultInjector;
class MachineCheckSink;

/** One of the 88 on-chip MEM slices. */
class MemSlice
{
  public:
    /**
     * @param hem hemisphere this slice belongs to.
     * @param index slice number 0..43 within the hemisphere.
     * @param ecc_enabled maintain/verify SECDED codes on words.
     * @param faults optional fault injector striking timed accesses.
     * @param mc optional machine-check sink; with one attached, an
     *   uncorrectable error raises a chip-level machine check instead
     *   of a warn-and-continue.
     */
    MemSlice(Hemisphere hem, int index, bool ecc_enabled,
             FaultInjector *faults = nullptr,
             MachineCheckSink *mc = nullptr);

    /** @return bank (0/1) of a word address: address bit 12. */
    static int
    bankOf(MemAddr addr)
    {
        return (addr >> 12) & 1;
    }

    /**
     * Timed read of one 320-byte word at cycle @p now.
     *
     * Panics on a same-cycle port violation (second read, or a
     * read+write conflict in the same bank).
     */
    Vec320 read(MemAddr addr, Cycle now);

    /**
     * read() writing straight into @p out (fully assigned) — the
     * zero-copy replay produce path reads into a tape arena slot.
     */
    void readInto(MemAddr addr, Cycle now, Vec320 &out);

    /**
     * Timed write of one 320-byte word at cycle @p now.
     *
     * The vector's ECC is checked (consumer side) before commit; a
     * corrected error increments the CSR counters. Panics on a port
     * violation.
     */
    void write(MemAddr addr, const Vec320 &vec, Cycle now);

    /**
     * Indirect read: each superlane tile reads its own word address
     * (stream-indirect Gather). Counts as one read-port use; per-tile
     * SRAM arrays make mixed addresses conflict-free within the port.
     */
    Vec320 gather(const std::array<MemAddr, kSuperlanes> &addrs,
                  Cycle now);

    /** gather() writing straight into @p out (fully assigned). */
    void gatherInto(const std::array<MemAddr, kSuperlanes> &addrs,
                    Cycle now, Vec320 &out);

    /**
     * Indirect write: each superlane tile stores its 16-byte word at
     * its own address (stream-indirect Scatter). The vector's ECC is
     * checked before commit.
     */
    void scatter(const std::array<MemAddr, kSuperlanes> &addrs,
                 const Vec320 &vec, Cycle now);

    /**
     * Trace-replay mode (Chip::beginReplay/finishReplay). Replay-path
     * producers skip the SECDED encode — no replay consumer checks —
     * so arriving vectors carry stale codes; while set, write() and
     * scatter() regenerate codes at commit instead of checking them,
     * keeping the stored image bit-identical to a live run. Sound
     * because replay is only taken for fault-free recordings whose
     * checks all came back Ok (zero CSR deltas either way).
     */
    void setReplayMode(bool on) { replay_ = on; }

    /** Untimed backdoor write used by host DMA; regenerates ECC. */
    void backdoorWrite(MemAddr addr, const Vec320 &vec);

    /** Untimed backdoor read used by host DMA and tests. */
    Vec320 backdoorRead(MemAddr addr) const;

    /** Flips one stored bit — soft-error injection for ECC tests. */
    void injectBitFlip(MemAddr addr, int byte, int bit);

    /**
     * Flips one stored bit addressed in SECDED-codeword space:
     * @p bit 0..127 hits the data word of @p chunk, 128..136 its
     * check bits. Used by scheduled FaultEvents.
     */
    void injectCodewordFlip(MemAddr addr, int chunk, int bit);

    /** @return unit name for diagnostics, e.g. "MEM_W3". */
    std::string name() const;

    /** @return total timed reads serviced. */
    std::uint64_t reads() const { return reads_; }

    /** @return total timed writes serviced. */
    std::uint64_t writes() const { return writes_; }

    /** @return single-bit errors corrected at this slice (CSR). */
    std::uint64_t correctedErrors() const { return corrected_; }

    /** @return uncorrectable errors observed at this slice (CSR). */
    std::uint64_t uncorrectableErrors() const { return uncorrectable_; }

    /** @return this slice's hemisphere. */
    Hemisphere hemisphere() const { return hem_; }

    /** @return this slice's index within the hemisphere. */
    int index() const { return index_; }

    /** @return X position on the superlane. */
    SlicePos pos() const { return Layout::memPos(hem_, index_); }

    /**
     * Serializes the SRAM image (data + SECDED check bits), CSR
     * counters and port-conflict tracking. Sparse: unallocated banks
     * and all-zero words are skipped — an all-zero stored word is
     * behaviorally identical to untouched SRAM (zero data carries a
     * zero code).
     */
    void saveState(SnapshotWriter &w) const;

    /** Restores the SRAM image and counters, replacing all content. */
    void loadState(SnapshotReader &r);

  private:
    struct Word
    {
        std::array<std::uint8_t, kLanes> bytes{};
        std::array<std::uint16_t, kSuperlanes> ecc{};
    };

    /** Lazily materializes a bank's backing store. */
    Word *bankStore(int bank);
    const Word *bankStoreConst(int bank) const;

    Word &wordAt(MemAddr addr);
    const Word *wordAtConst(MemAddr addr) const;

    void checkPort(MemAddr addr, bool is_write, Cycle now);

    /** Raises a machine check (or warns without a sink). */
    void reportUncorrectable(Cycle now, const char *what, MemAddr addr);

    Hemisphere hem_;
    int index_;
    bool eccEnabled_;
    bool replay_ = false; ///< Regenerate (not check) ECC on commit.
    FaultInjector *faults_;
    MachineCheckSink *mc_;

    /** Two banks of 4096 words, allocated on first touch. */
    mutable std::array<std::unique_ptr<Word[]>, kMemBanks> banks_{};

    // Port-conflict tracking for the current cycle.
    Cycle lastCycle_ = ~Cycle{0};
    int readBank_ = -1;
    int writeBank_ = -1;

    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t corrected_ = 0;
    std::uint64_t uncorrectable_ = 0;
};

} // namespace tsp

#endif // TSP_MEM_MEM_SLICE_HH
