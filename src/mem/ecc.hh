/**
 * @file
 * SECDED error-correcting code over 128-bit memory words.
 *
 * The TSP protects each 16-byte memory word with 9 check bits (137
 * bits total): an extended Hamming code giving single-error correction
 * and double-error detection. Check bits are generated once at the
 * producing slice, travel with the word through the stream registers,
 * and are verified by every consuming slice — covering both SRAM soft
 * errors and datapath upsets (paper II.D).
 */

#ifndef TSP_MEM_ECC_HH
#define TSP_MEM_ECC_HH

#include <cstdint>

#include "arch/types.hh"

namespace tsp {

/** Outcome of an ECC check. */
enum class EccStatus : std::uint8_t {
    Ok,            ///< No error.
    Corrected,     ///< Single-bit error corrected in place.
    Uncorrectable, ///< Double-bit (or worse) error detected.
};

/**
 * Computes the 9-bit SECDED code for a 16-byte word.
 *
 * Bit layout: bits 0..7 are the Hamming parities, bit 8 the overall
 * parity. The code of an all-zero word is 0.
 */
std::uint16_t eccCompute(const std::uint8_t *word16);

/**
 * Verifies @p word16 against @p ecc; corrects a single flipped bit in
 * either the data or the check bits in place.
 *
 * @return Ok, Corrected, or Uncorrectable.
 */
EccStatus eccCheckCorrect(std::uint8_t *word16, std::uint16_t &ecc);

/** Computes codes for all 20 superlane words of a vector. */
void eccComputeVec(Vec320 &vec);

/**
 * Checks/corrects all 20 superlane words of a vector.
 *
 * @return the worst status across the words.
 */
EccStatus eccCheckVec(Vec320 &vec);

} // namespace tsp

#endif // TSP_MEM_ECC_HH
