/**
 * @file
 * One-call soak driver: deterministic load generation -> fleet of
 * pod-collective serving tiers -> windowed time series -> JSON.
 *
 * The soak workload is the N-chip ring all-reduce collective
 * (serve::PodBackend): its per-request service time is a few hundred
 * nanoseconds of virtual time and ~0.1 ms of host time, which is what
 * makes millions of simulated requests tractable on one machine. The
 * admission table is calibrated fault-free once and shared by every
 * pod; per-(pod, worker) fault seeds are derived from the base seed
 * (common/seed.hh), so background fault injection is live during the
 * whole run and still replays byte-identically.
 */

#ifndef TSP_FLEET_SOAK_HH
#define TSP_FLEET_SOAK_HH

#include <cstdint>
#include <string>

#include "arch/config.hh"
#include "fleet/autoscaler.hh"
#include "fleet/loadgen.hh"

namespace tsp::fleet {

/** Everything one soak run needs. */
struct SoakConfig
{
    /** Base seed: load, payloads and every fault stream derive from
     * it — one number reproduces the entire run. */
    std::uint64_t seed = 1;

    // Workload (one pod = one serving tier over a chip-pod engine).
    int chipsPerPod = 2;      ///< Ring size of each pod collective.
    Cycle wireLatencySec = 40; ///< C2C wire latency, cycles.
    int workersPerPod = 2;    ///< Engines (worker threads) per pod.
    int batchMax = 1;         ///< Submit-time batching cap.
    double batchWindowSec = 0.0;
    int maxRetries = 2; ///< Machine-check retry budget per batch.

    // Fleet / scaling.
    int initialPods = 2;
    AutoscalerConfig autoscaler{};
    double windowSec = 1.0;

    // Load.
    LoadGenConfig load{}; ///< inputBytes is filled in by runSoak().
    double durationSec = 60.0; ///< Virtual seconds of arrivals.
    /** Stop after this many requests (0 = duration-bound only). */
    std::uint64_t maxRequests = 0;
    /** Per-request deadline = arrival + slack (0 = no deadlines:
     * nothing is ever shed or rejected on time). */
    double deadlineSlackSec = 0.0;

    // Faults (applied to every chip; seeds derived per pod/worker).
    FaultConfig fault{};

    /** Chip template (clock, ECC, fast-forward). */
    ChipConfig chip{};
};

/** Aggregate results of one soak run. */
struct SoakReport
{
    std::string json; ///< The full BENCH_soak.json document.

    std::uint64_t submitted = 0;
    std::uint64_t served = 0;
    std::uint64_t shed = 0;
    std::uint64_t failedMachineCheck = 0;
    std::uint64_t machineChecks = 0;
    double availability = 1.0; ///< served / submitted.
    int podsLaunched = 0;
    int podsRetired = 0;
    std::size_t windows = 0;
};

/**
 * Runs one soak end to end (blocking; spawns the fleet's worker
 * threads internally). The returned JSON contains only virtual-time
 * quantities: two runs with equal configs produce byte-identical
 * documents however the host schedules them.
 */
SoakReport runSoak(const SoakConfig &cfg);

} // namespace tsp::fleet

#endif // TSP_FLEET_SOAK_HH
