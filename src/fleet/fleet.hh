/**
 * @file
 * Fleet controller: N serving pods behind one deterministic router.
 *
 * The fleet owns a set of InferenceServer instances ("pods"), routes
 * each arriving request to the pod whose admission controller proves
 * the earliest completion (ties to the lowest pod id), and *sheds* a
 * request outright — zero chip cycles spent — when every routable
 * pod's provably-earliest completion already misses the deadline.
 * This lifts the TSP's compile-time-exact cycle counts (paper Eq. 4,
 * IV.F, V.c) from per-server admission control to fleet-level load
 * shedding: the shed decision is a proof, not a heuristic timeout.
 *
 * An Autoscaler evaluated at every observation-window boundary
 * launches pods (routable after a provisioning delay) and drains
 * them (no new traffic; Drained once the booked backlog has passed).
 * All routing, shedding and scaling inputs are virtual-time
 * quantities, and every pod runs with pinned dispatch, so a whole
 * soak run — including which request absorbs which injected fault —
 * replays identically for a given seed.
 *
 * Threading: submit()/advanceTo() must be called from one thread
 * (the load generator); pod worker threads run concurrently and
 * report through the shared SoakTimeSeries.
 */

#ifndef TSP_FLEET_FLEET_HH
#define TSP_FLEET_FLEET_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fleet/autoscaler.hh"
#include "fleet/timeseries.hh"
#include "serve/backend.hh"
#include "serve/server.hh"

namespace tsp::fleet {

/** Builds one worker engine for pod @p pod (fault seeds should be
 * derived per (pod, worker) — see common/seed.hh). */
using PodBackendFactory =
    std::function<std::unique_ptr<serve::Backend>(int pod,
                                                  int worker)>;

/** Fleet-level configuration. */
struct FleetConfig
{
    /** Pods running before the first request (>= 1). */
    int initialPods = 2;

    /**
     * Per-pod server template. pinnedDispatch is forced on (fleet
     * determinism requires it) and onResult is chained to the
     * fleet's time series; everything else applies as given.
     */
    serve::ServerConfig server{};

    /** Exact cycles(b) table every pod books against (single-model
     * fleets; ignored when @ref models is non-empty). */
    std::vector<Cycle> cyclesByBatch;

    /**
     * Model families (non-empty ⇒ every pod serves its own
     * ModelRegistry built from these specs, requests route by model
     * id via submitModel(), and swap costs are booked exactly). When
     * makeBackend is also set, its backends must support
     * bindProgram(); when it is null, pods build SessionBackends
     * from the registry directly.
     */
    std::vector<serve::ModelSpec> models;

    /** Per-pod registry byte budget (multi-model fleets only). */
    std::size_t registryBytes = serve::ModelRegistry::kDefaultBudget;

    /** Engine factory (called workers times per pod). */
    PodBackendFactory makeBackend;

    /** Scaling policy. */
    AutoscalerConfig autoscaler{};

    /** Observation-window width, virtual seconds. */
    double windowSec = 1.0;
};

/** Pod lifecycle (see DESIGN.md fleet section for the diagram). */
enum class PodState : std::uint8_t {
    Provisioning, ///< Launched; routable at readyAtSec.
    Active,       ///< Routable.
    Draining,     ///< No new traffic; booked work completing.
    Drained,      ///< Backlog fully executed; server shut down.
};

/** One pod's control block. */
struct PodInfo
{
    int id = 0;
    PodState state = PodState::Active;
    double readyAtSec = 0.0; ///< Provisioning -> Active time.
};

/** The fleet controller. */
class Fleet
{
  public:
    /** @param ts shared time series (outlives the fleet). */
    Fleet(FleetConfig cfg, SoakTimeSeries &ts);

    /** Drains every pod. */
    ~Fleet();

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    /**
     * Crosses any window boundaries in (lastAdvance, now_sec],
     * evaluating the autoscaler at each: launches/drains pods and
     * retires Draining pods whose booked backlog has passed. Call
     * with each arrival stamp before submitting it.
     */
    void advanceTo(double now_sec);

    /**
     * Routes one request to the earliest-completion routable pod, or
     * sheds it (recorded, zero cycles) when the deadline provably
     * cannot be met anywhere. deadline_sec <= 0 never sheds.
     */
    void submit(std::vector<std::int8_t> input, double arrival_sec,
                double deadline_sec);

    /**
     * Model-aware routing: routes one request of family @p model
     * (tenant class @p slo_class) to the routable pod whose
     * admission state proves the earliest completion *for that
     * model* — weight-swap cost included, so a pod already staging
     * the family wins over an otherwise-idle pod that would have to
     * swap — or sheds it when every pod provably misses the
     * deadline. submit() is exactly submitModel(0, 0, ...).
     */
    void submitModel(int model, int slo_class,
                     std::vector<std::int8_t> input,
                     double arrival_sec, double deadline_sec);

    /** Flushes open batches and blocks until every pod is idle. */
    void drainAll();

    /** @return routable (Active) pods. */
    int activePods() const;

    /** @return pods launched over the fleet's lifetime. */
    int podsLaunched() const { return static_cast<int>(pods_.size()); }

    /** @return pods currently Draining or Drained. */
    int podsRetired() const;

    /** @return sum of every pod's booked backlog at @p now_sec. */
    double totalBacklogSec(double now_sec) const;

    /** @return pod @p i's control block (tests). */
    const PodInfo &podInfo(int i) const { return pods_[static_cast<std::size_t>(i)].info; }

    /** @return pod @p i's server (tests). */
    const serve::InferenceServer &podServer(int i) const
    {
        return *pods_[static_cast<std::size_t>(i)].server;
    }

    /** @return requests shed at the fleet level. */
    std::uint64_t shedCount() const { return shed_; }

  private:
    struct Pod
    {
        PodInfo info;
        /** Per-pod compiled-model registry (multi-model fleets);
         * declared before the server so it outlives it. */
        std::unique_ptr<serve::ModelRegistry> registry;
        std::unique_ptr<serve::InferenceServer> server;
    };

    void launchPod(double now_sec);
    void evaluateWindow(std::size_t window, double boundary_sec);

    FleetConfig cfg_;
    SoakTimeSeries &ts_;
    Autoscaler scaler_;
    std::vector<Pod> pods_;
    std::size_t nextWindow_ = 0; ///< First unevaluated window.
    std::uint64_t shed_ = 0;
    /** Per-window submit/shed counts kept on the submit thread: the
     * autoscaler's shed-fraction signal must not depend on how far
     * the worker threads happen to have caught up at a boundary. */
    std::vector<std::uint64_t> winSubmitted_;
    std::vector<std::uint64_t> winShed_;
};

} // namespace tsp::fleet

#endif // TSP_FLEET_FLEET_HH
