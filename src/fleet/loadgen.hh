/**
 * @file
 * Deterministic open-loop load generation for fleet soak runs.
 *
 * Arrivals are stamped on the serving layer's *virtual* timeline and
 * drawn from seeded streams (common/seed.hh domains), so a soak run
 * with the same seed replays the identical arrival sequence and the
 * identical request payloads — byte for byte — however fast the host
 * happens to execute it. Three arrival models:
 *
 *  - Poisson: memoryless exponential gaps at a constant mean rate.
 *  - Bursty: a two-state Markov-modulated Poisson process (MMPP).
 *    The burst state fires at rate * burstFactor; the base-state
 *    rate is derated so the long-run mean is still `rateRps`.
 *  - Diurnal: a sinusoidally modulated rate lambda(t) =
 *    rate * (1 + amplitude * sin(2 pi t / period)), realized by
 *    thinning a Poisson stream at the peak rate — load that rises
 *    and falls like a compressed day/night cycle, which is what the
 *    autoscaler is for.
 */

#ifndef TSP_FLEET_LOADGEN_HH
#define TSP_FLEET_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace tsp::fleet {

/** Arrival-process shape. */
enum class ArrivalModel : std::uint8_t {
    Poisson,
    Bursty,
    Diurnal,
};

/** @return a stable lower-case name for @p m. */
const char *arrivalModelName(ArrivalModel m);

/** Load-generator configuration. */
struct LoadGenConfig
{
    ArrivalModel model = ArrivalModel::Poisson;

    /** Long-run mean arrival rate, requests per virtual second. */
    double rateRps = 1000.0;

    /** Base seed; arrival, payload and burst streams are derived
     * from it (SeedDomain::Arrival / Payload / Burst). */
    std::uint64_t seed = 1;

    /** Bytes per request payload (the model's input size). */
    std::size_t inputBytes = 0;

    // Bursty (MMPP) parameters.
    /** Burst-state rate multiplier (> 1). */
    double burstFactor = 4.0;
    /** Long-run fraction of time spent in the burst state
     * (0 < fraction and fraction * burstFactor <= 1 so the derated
     * base rate stays non-negative). */
    double burstFraction = 0.1;
    /** Mean burst duration, virtual seconds. */
    double meanBurstSec = 0.25;

    // Diurnal parameters.
    /** Modulation depth in [0, 1): peak rate = rate * (1 + A). */
    double diurnalAmplitude = 0.5;
    /** Full sine period, virtual seconds. */
    double diurnalPeriodSec = 20.0;
};

/** A seeded open-loop arrival/payload stream. */
class LoadGenerator
{
  public:
    explicit LoadGenerator(LoadGenConfig cfg);

    /**
     * @return the next arrival stamp, virtual seconds. Monotone
     * non-decreasing; the same seed yields the identical sequence.
     */
    double nextArrivalSec();

    /** Fills @p buf (resized to inputBytes) with the next request's
     * deterministic payload bytes. */
    void fillPayload(std::vector<std::int8_t> &buf);

    const LoadGenConfig &config() const { return cfg_; }

  private:
    double expGap(double rate);
    double nextPoisson();
    double nextBursty();
    double nextDiurnal();

    LoadGenConfig cfg_;
    Rng arrivals_;
    Rng payload_;
    Rng burst_;
    double now_ = 0.0;

    // Bursty state: which MMPP state we are in and until when.
    bool inBurst_ = false;
    double stateEndSec_ = 0.0;
};

} // namespace tsp::fleet

#endif // TSP_FLEET_LOADGEN_HH
