#include "fleet/autoscaler.hh"

#include "common/logging.hh"

namespace tsp::fleet {

const char *
scaleDecisionName(ScaleDecision d)
{
    switch (d) {
      case ScaleDecision::Hold: return "hold";
      case ScaleDecision::Up: return "up";
      case ScaleDecision::Down: return "down";
    }
    return "unknown";
}

Autoscaler::Autoscaler(AutoscalerConfig cfg) : cfg_(cfg)
{
    TSP_ASSERT(cfg_.minPods >= 1);
    TSP_ASSERT(cfg_.maxPods >= cfg_.minPods);
    TSP_ASSERT(cfg_.upWindows >= 1);
    TSP_ASSERT(cfg_.downWindows >= 1);
    TSP_ASSERT(cfg_.scaleDownBacklogSec <= cfg_.scaleUpBacklogSec);
}

ScaleDecision
Autoscaler::evaluate(const AutoscalerSignal &s, int routable_pods,
                     int provisioning_pods)
{
    const bool pressured =
        s.backlogSecPerPod >= cfg_.scaleUpBacklogSec ||
        s.shedFraction >= cfg_.scaleUpShedFrac;
    const bool idle = s.backlogSecPerPod < cfg_.scaleDownBacklogSec &&
                      s.shedFraction == 0.0;

    if (pressured) {
        downStreak_ = 0;
        ++upStreak_;
        if (upStreak_ >= cfg_.upWindows &&
            routable_pods + provisioning_pods < cfg_.maxPods) {
            upStreak_ = 0;
            return ScaleDecision::Up;
        }
        return ScaleDecision::Hold;
    }

    upStreak_ = 0;
    if (idle) {
        ++downStreak_;
        // A pod still provisioning means a recent scale-up; never
        // drain while one is in flight.
        if (downStreak_ >= cfg_.downWindows &&
            provisioning_pods == 0 &&
            routable_pods > cfg_.minPods) {
            downStreak_ = 0;
            return ScaleDecision::Down;
        }
        return ScaleDecision::Hold;
    }

    downStreak_ = 0;
    return ScaleDecision::Hold;
}

} // namespace tsp::fleet
