#include "fleet/soak.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/seed.hh"
#include "fleet/fleet.hh"
#include "fleet/timeseries.hh"
#include "serve/backend.hh"

namespace tsp::fleet {

SoakReport
runSoak(const SoakConfig &cfg)
{
    TSP_ASSERT(cfg.durationSec > 0.0);
    TSP_ASSERT(cfg.chipsPerPod >= 2);
    TSP_ASSERT(cfg.workersPerPod >= 1);

    // One fault-free calibration per batch size gives the exact
    // cycles(b) every pod books against (timing is data- and
    // fault-independent in a static schedule).
    const std::vector<Cycle> table =
        serve::PodBackend::serviceCyclesTable(
            cfg.chipsPerPod, cfg.wireLatencySec, cfg.chip,
            std::max(1, cfg.batchMax));

    FleetConfig fc;
    fc.initialPods = cfg.initialPods;
    fc.cyclesByBatch = table;
    fc.autoscaler = cfg.autoscaler;
    fc.windowSec = cfg.windowSec;
    fc.server.workers = cfg.workersPerPod;
    fc.server.maxRetries = cfg.maxRetries;
    fc.server.batchMax = cfg.batchMax;
    fc.server.batchWindowSec = cfg.batchWindowSec;
    fc.server.chip = cfg.chip;
    fc.makeBackend = [&cfg](int pod, int worker) {
        ChipConfig cc = cfg.chip;
        cc.fault = cfg.fault;
        // Chain: base -> pod -> worker; PodBackend derives per-chip
        // streams below that (SeedDomain::PodChip), so no two engines
        // anywhere in the fleet share a fault stream.
        cc.fault.seed = deriveSeed(
            deriveSeed(cfg.seed, SeedDomain::FleetPod,
                       static_cast<std::uint64_t>(pod)),
            SeedDomain::FleetWorker,
            static_cast<std::uint64_t>(worker));
        return std::make_unique<serve::PodBackend>(
            cfg.chipsPerPod, cfg.wireLatencySec, cc,
            std::max(1, cfg.batchMax));
    };

    // Latency histogram range: generous multiple of the batch-1
    // service time plus the deadline slack, so trajectories resolve
    // even under deep queueing.
    const double service_sec =
        static_cast<double>(table[0]) * cfg.chip.cyclePeriodSec();
    const double lat_hi =
        std::max(service_sec * 64.0,
                 cfg.deadlineSlackSec * 4.0 + service_sec);

    SoakTimeSeries ts(cfg.windowSec, lat_hi);

    LoadGenConfig lg = cfg.load;
    lg.seed = cfg.seed;
    lg.inputBytes = serve::PodBackend::inputBytes(cfg.chipsPerPod);
    LoadGenerator gen(lg);

    std::uint64_t submitted = 0;
    {
        Fleet fleet(fc, ts);
        std::vector<std::int8_t> payload;
        for (;;) {
            if (cfg.maxRequests != 0 &&
                submitted >= cfg.maxRequests)
                break;
            const double t = gen.nextArrivalSec();
            if (t > cfg.durationSec)
                break;
            fleet.advanceTo(t);
            gen.fillPayload(payload);
            const double deadline =
                cfg.deadlineSlackSec > 0.0
                    ? t + cfg.deadlineSlackSec
                    : 0.0;
            fleet.submit(payload, t, deadline);
            ++submitted;
        }
        // Cross the remaining boundaries (autoscaler drains trailing
        // capacity against an empty arrival stream), then wait for
        // every booked request to execute.
        fleet.advanceTo(cfg.durationSec);
        fleet.drainAll();

        SoakReport rep;
        rep.submitted = ts.totalSubmitted();
        rep.served = ts.totalServed();
        rep.shed = ts.totalShed();
        rep.availability =
            rep.submitted == 0
                ? 1.0
                : static_cast<double>(rep.served) /
                      static_cast<double>(rep.submitted);
        rep.podsLaunched = fleet.podsLaunched();
        rep.podsRetired = fleet.podsRetired();
        rep.windows = ts.windowCount();

        JsonWriter j;
        j.beginObject();
        j.key("config").beginObject();
        j.kv("seed", cfg.seed);
        j.kv("arrival_model",
             std::string(arrivalModelName(cfg.load.model)));
        j.kv("rate_rps", cfg.load.rateRps);
        j.kv("duration_sec", cfg.durationSec);
        j.kv("max_requests", cfg.maxRequests);
        j.kv("deadline_slack_us", cfg.deadlineSlackSec * 1e6);
        j.kv("chips_per_pod", cfg.chipsPerPod);
        j.kv("workers_per_pod", cfg.workersPerPod);
        j.kv("batch_max", cfg.batchMax);
        j.kv("initial_pods", cfg.initialPods);
        j.kv("min_pods", cfg.autoscaler.minPods);
        j.kv("max_pods", cfg.autoscaler.maxPods);
        j.kv("window_sec", cfg.windowSec);
        j.kv("provision_sec", cfg.autoscaler.provisionSec);
        j.kv("service_us", service_sec * 1e6);
        j.kv("clock_hz", cfg.chip.clockHz);
        j.key("fault").beginObject();
        j.kv("mem_read_rate", cfg.fault.memReadRate);
        j.kv("mem_write_rate", cfg.fault.memWriteRate);
        j.kv("stream_rate", cfg.fault.streamRate);
        j.kv("c2c_rate", cfg.fault.c2cRate);
        j.kv("double_bit_fraction", cfg.fault.doubleBitFraction);
        j.endObject();
        j.endObject();

        j.key("fleet").beginObject();
        j.kv("pods_launched", rep.podsLaunched);
        j.kv("pods_retired", rep.podsRetired);
        j.kv("shed", rep.shed);
        j.endObject();

        j.key("soak");
        ts.appendJson(j);
        j.endObject();
        rep.json = j.str();

        // Pull reliability totals out of the drained fleet's pods.
        for (int p = 0; p < fleet.podsLaunched(); ++p) {
            const serve::ServerMetrics m =
                fleet.podServer(p).metricsSnapshot();
            rep.failedMachineCheck +=
                m.counters().get("failed_machine_check");
            rep.machineChecks += m.counters().get("machine_checks");
        }
        return rep;
    }
}

} // namespace tsp::fleet
