/**
 * @file
 * Windowed soak observability.
 *
 * Every resolved request is attributed to the window of its *arrival*
 * stamp (arrivals are monotone, so once the fleet has drained, every
 * window is complete), accumulating outcome counters and a per-window
 * latency histogram. Because all inputs are virtual-time quantities —
 * never host wall time — the whole time series is a deterministic
 * function of the seed, and two same-seed soak runs emit byte-identical
 * JSON. Goodput, availability, shed/reject/machine-check-retry rates
 * and p50/p99 trajectories are derived per window at emission time.
 */

#ifndef TSP_FLEET_TIMESERIES_HH
#define TSP_FLEET_TIMESERIES_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "serve/request.hh"

namespace tsp::fleet {

/** One autoscaler transition, for the report. */
struct ScaleEvent
{
    double timeSec = 0.0;
    int activePods = 0; ///< Routable pods after the transition.
    char kind = '=';    ///< '+' scale-up, '-' drain start, '=' drained.
};

/** Windowed counters + latency trajectories for one soak run. */
class SoakTimeSeries
{
  public:
    /**
     * @param window_sec window width on the virtual timeline.
     * @param lat_hi_sec latency histogram range upper bound (e.g. a
     *        few times the expected worst queue + service latency).
     * @param buckets histogram buckets per window.
     */
    SoakTimeSeries(double window_sec, double lat_hi_sec,
                   std::size_t buckets = 128);

    /** Thread-safe: attributes @p r to its arrival window. */
    void recordResult(const serve::Result &r);

    /** Records a fleet-level shed (refused before any pod booking)
     * at arrival @p arrival_sec. */
    void recordShed(double arrival_sec);

    /** Records an autoscaler transition. */
    void recordScaleEvent(double time_sec, int active_pods,
                          char kind);

    /** Records the routable pod count for the window containing
     * @p time_sec (called by the fleet at window boundaries). */
    void recordPodCount(double time_sec, int active_pods);

    double windowSec() const { return windowSec_; }

    /** @return windows spanned so far. */
    std::size_t windowCount() const;

    /** @return fraction of window @p w's submissions that were shed
     * (0 when the window saw none) — an autoscaler input. */
    double shedFraction(std::size_t w) const;

    /** @return total requests recorded (all outcomes + sheds). */
    std::uint64_t totalSubmitted() const;

    /** @return total served (deadline met or none). */
    std::uint64_t totalServed() const;

    /** @return total fleet-level sheds. */
    std::uint64_t totalShed() const;

    /**
     * Emits the full time series: per-window counter arrays, derived
     * goodput/availability trajectories, p50/p99 latency trajectories
     * and the scale-event log. Values are virtual-time quantities
     * only, so same-seed runs emit byte-identical documents.
     */
    void appendJson(JsonWriter &j) const;

  private:
    struct Window
    {
        std::uint64_t submitted = 0;
        std::uint64_t served = 0;
        std::uint64_t shed = 0;
        std::uint64_t rejectedDeadline = 0;
        std::uint64_t rejectedQueueFull = 0;
        std::uint64_t rejectedInvalid = 0;
        std::uint64_t deadlineMissed = 0;
        std::uint64_t failed = 0;
        std::uint64_t failedMachineCheck = 0;
        std::uint64_t machineChecks = 0;
        std::uint64_t mcRetries = 0;
        int activePods = 0;
        Histogram latency;

        explicit Window(double lat_hi_sec, std::size_t buckets)
            : latency(0.0, lat_hi_sec, buckets)
        {
        }
    };

    Window &windowAtLocked(double time_sec);

    const double windowSec_;
    const double latHiSec_;
    const std::size_t buckets_;

    mutable std::mutex mu_;
    std::vector<Window> windows_;
    std::vector<ScaleEvent> events_;
    Histogram overall_; ///< Whole-run served-latency distribution.
};

} // namespace tsp::fleet

#endif // TSP_FLEET_TIMESERIES_HH
