#include "fleet/timeseries.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tsp::fleet {

SoakTimeSeries::SoakTimeSeries(double window_sec, double lat_hi_sec,
                               std::size_t buckets)
    : windowSec_(window_sec), latHiSec_(lat_hi_sec),
      buckets_(buckets), overall_(0.0, lat_hi_sec, buckets)
{
    TSP_ASSERT(window_sec > 0.0);
}

SoakTimeSeries::Window &
SoakTimeSeries::windowAtLocked(double time_sec)
{
    const double t = std::max(0.0, time_sec);
    const std::size_t w =
        static_cast<std::size_t>(std::floor(t / windowSec_));
    while (windows_.size() <= w) {
        // A new window inherits the current pod count until the
        // fleet stamps it at the boundary.
        const int pods =
            windows_.empty() ? 0 : windows_.back().activePods;
        windows_.emplace_back(latHiSec_, buckets_);
        windows_.back().activePods = pods;
    }
    return windows_[w];
}

void
SoakTimeSeries::recordResult(const serve::Result &r)
{
    std::lock_guard<std::mutex> lock(mu_);
    Window &w = windowAtLocked(r.arrivalSec);
    ++w.submitted;
    w.machineChecks += r.machineChecks;
    w.mcRetries += r.retries;
    switch (r.outcome) {
      case serve::Outcome::Served:
        ++w.served;
        w.latency.record(r.latencySec());
        overall_.record(r.latencySec());
        break;
      case serve::Outcome::RejectedDeadline:
        ++w.rejectedDeadline;
        break;
      case serve::Outcome::RejectedQueueFull:
        ++w.rejectedQueueFull;
        break;
      case serve::Outcome::RejectedInvalid:
        ++w.rejectedInvalid;
        break;
      case serve::Outcome::DeadlineMissed:
        ++w.deadlineMissed;
        break;
      case serve::Outcome::Failed:
        ++w.failed;
        break;
      case serve::Outcome::FailedMachineCheck:
        ++w.failedMachineCheck;
        break;
    }
}

void
SoakTimeSeries::recordShed(double arrival_sec)
{
    std::lock_guard<std::mutex> lock(mu_);
    Window &w = windowAtLocked(arrival_sec);
    ++w.submitted;
    ++w.shed;
}

void
SoakTimeSeries::recordScaleEvent(double time_sec, int active_pods,
                                 char kind)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(ScaleEvent{time_sec, active_pods, kind});
}

void
SoakTimeSeries::recordPodCount(double time_sec, int active_pods)
{
    std::lock_guard<std::mutex> lock(mu_);
    windowAtLocked(time_sec).activePods = active_pods;
}

std::size_t
SoakTimeSeries::windowCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return windows_.size();
}

double
SoakTimeSeries::shedFraction(std::size_t w) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (w >= windows_.size() || windows_[w].submitted == 0)
        return 0.0;
    return static_cast<double>(windows_[w].shed) /
           static_cast<double>(windows_[w].submitted);
}

std::uint64_t
SoakTimeSeries::totalSubmitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const Window &w : windows_)
        n += w.submitted;
    return n;
}

std::uint64_t
SoakTimeSeries::totalServed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const Window &w : windows_)
        n += w.served;
    return n;
}

std::uint64_t
SoakTimeSeries::totalShed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const Window &w : windows_)
        n += w.shed;
    return n;
}

void
SoakTimeSeries::appendJson(JsonWriter &j) const
{
    std::lock_guard<std::mutex> lock(mu_);

    std::uint64_t submitted = 0, served = 0, shed = 0,
                  rej_deadline = 0, rej_full = 0, rej_invalid = 0,
                  missed = 0, failed = 0, failed_mc = 0, mchecks = 0,
                  retries = 0;
    for (const Window &w : windows_) {
        submitted += w.submitted;
        served += w.served;
        shed += w.shed;
        rej_deadline += w.rejectedDeadline;
        rej_full += w.rejectedQueueFull;
        rej_invalid += w.rejectedInvalid;
        missed += w.deadlineMissed;
        failed += w.failed;
        failed_mc += w.failedMachineCheck;
        mchecks += w.machineChecks;
        retries += w.mcRetries;
    }

    j.beginObject();
    j.kv("window_sec", windowSec_);
    j.kv("windows", static_cast<std::uint64_t>(windows_.size()));

    j.key("totals").beginObject();
    j.kv("submitted", submitted);
    j.kv("served", served);
    j.kv("shed", shed);
    j.kv("rejected_deadline", rej_deadline);
    j.kv("rejected_queue_full", rej_full);
    j.kv("rejected_invalid", rej_invalid);
    j.kv("deadline_missed", missed);
    j.kv("failed", failed);
    j.kv("failed_machine_check", failed_mc);
    j.kv("machine_checks", mchecks);
    j.kv("mc_retries", retries);
    j.kv("availability",
         submitted == 0 ? 1.0
                        : static_cast<double>(served) /
                              static_cast<double>(submitted));
    if (overall_.count() > 0) {
        j.key("latency_us").beginObject();
        j.kv("p50", overall_.quantile(0.50) * 1e6);
        j.kv("p99", overall_.quantile(0.99) * 1e6);
        j.kv("mean", overall_.mean() * 1e6);
        j.kv("max", overall_.maxSample() * 1e6);
        j.endObject();
    }
    j.endObject();

    // Per-window trajectories: parallel arrays indexed by window.
    auto emitCounts = [&](const char *name,
                          std::uint64_t Window::*field) {
        j.key(name).beginArray();
        for (const Window &w : windows_)
            j.value(w.*field);
        j.endArray();
    };
    j.key("series").beginObject();
    emitCounts("submitted", &Window::submitted);
    emitCounts("served", &Window::served);
    emitCounts("shed", &Window::shed);
    emitCounts("rejected_deadline", &Window::rejectedDeadline);
    emitCounts("rejected_queue_full", &Window::rejectedQueueFull);
    emitCounts("rejected_invalid", &Window::rejectedInvalid);
    emitCounts("deadline_missed", &Window::deadlineMissed);
    emitCounts("failed", &Window::failed);
    emitCounts("failed_machine_check", &Window::failedMachineCheck);
    emitCounts("machine_checks", &Window::machineChecks);
    emitCounts("mc_retries", &Window::mcRetries);

    j.key("active_pods").beginArray();
    for (const Window &w : windows_)
        j.value(w.activePods);
    j.endArray();

    j.key("goodput_rps").beginArray();
    for (const Window &w : windows_)
        j.value(static_cast<double>(w.served) / windowSec_);
    j.endArray();

    j.key("availability").beginArray();
    for (const Window &w : windows_)
        j.value(w.submitted == 0
                    ? 1.0
                    : static_cast<double>(w.served) /
                          static_cast<double>(w.submitted));
    j.endArray();

    // A window that served nothing has no latency population; emit
    // the -1 sentinel — a value no real latency can take — instead of
    // 0.0, which is indistinguishable from a legitimate (sub-bucket)
    // near-zero quantile and read by dashboards as "infinitely fast".
    j.key("p50_us").beginArray();
    for (const Window &w : windows_)
        j.value(w.latency.count() == 0
                    ? -1.0
                    : w.latency.quantile(0.50) * 1e6);
    j.endArray();

    j.key("p99_us").beginArray();
    for (const Window &w : windows_)
        j.value(w.latency.count() == 0
                    ? -1.0
                    : w.latency.quantile(0.99) * 1e6);
    j.endArray();
    j.endObject();

    j.key("scale_events").beginArray();
    for (const ScaleEvent &e : events_) {
        j.beginObject();
        j.kv("t_sec", e.timeSec);
        j.kv("active_pods", e.activePods);
        j.kv("kind", std::string(1, e.kind));
        j.endObject();
    }
    j.endArray();

    j.endObject();
}

} // namespace tsp::fleet
