#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/stats.hh"

namespace tsp::fleet {

Fleet::Fleet(FleetConfig cfg, SoakTimeSeries &ts)
    : cfg_(std::move(cfg)), ts_(ts), scaler_(cfg_.autoscaler)
{
    TSP_ASSERT(cfg_.initialPods >= 1);
    TSP_ASSERT(cfg_.makeBackend != nullptr || !cfg_.models.empty());
    TSP_ASSERT(!cfg_.cyclesByBatch.empty() || !cfg_.models.empty());
    TSP_ASSERT(cfg_.windowSec > 0.0);
    pods_.reserve(static_cast<std::size_t>(cfg_.initialPods));
    for (int p = 0; p < cfg_.initialPods; ++p) {
        launchPod(0.0);
        pods_.back().info.state = PodState::Active;
        pods_.back().info.readyAtSec = 0.0;
    }
    ts_.recordPodCount(0.0, activePods());
}

Fleet::~Fleet() { drainAll(); }

void
Fleet::launchPod(double now_sec)
{
    const int id = static_cast<int>(pods_.size());
    serve::ServerConfig sc = cfg_.server;
    // Fleet determinism requires every request to execute on the
    // engine its booking assumed (see ServerConfig::pinnedDispatch).
    sc.pinnedDispatch = true;
    sc.onResult = [this](const serve::Result &r) {
        ts_.recordResult(r);
    };
    Pod pod;
    pod.info.id = id;
    pod.info.state = PodState::Provisioning;
    pod.info.readyAtSec = now_sec + cfg_.autoscaler.provisionSec;
    if (!cfg_.models.empty()) {
        // Multi-model pod: its own registry (compiled programs are
        // per-pod state, like the engines) over the shared specs.
        pod.registry = std::make_unique<serve::ModelRegistry>(
            cfg_.models, cfg_.registryBytes);
        if (cfg_.makeBackend != nullptr) {
            pod.server = std::make_unique<serve::InferenceServer>(
                [this, id](int worker) {
                    return cfg_.makeBackend(id, worker);
                },
                *pod.registry, sc);
        } else {
            pod.server = std::make_unique<serve::InferenceServer>(
                *pod.registry, sc);
        }
    } else {
        pod.server = std::make_unique<serve::InferenceServer>(
            [this, id](int worker) {
                return cfg_.makeBackend(id, worker);
            },
            cfg_.cyclesByBatch, sc);
    }
    pods_.push_back(std::move(pod));
}

int
Fleet::activePods() const
{
    int n = 0;
    for (const Pod &p : pods_)
        n += p.info.state == PodState::Active ? 1 : 0;
    return n;
}

int
Fleet::podsRetired() const
{
    int n = 0;
    for (const Pod &p : pods_) {
        n += (p.info.state == PodState::Draining ||
              p.info.state == PodState::Drained)
                 ? 1
                 : 0;
    }
    return n;
}

double
Fleet::totalBacklogSec(double now_sec) const
{
    // Order-independent across pods: the fleet total must not change
    // if the pod container is ever reordered or summed concurrently.
    FineFixedPointSum total;
    for (const Pod &p : pods_) {
        if (p.info.state != PodState::Drained)
            total.add(p.server->admission().backlogSec(now_sec));
    }
    return total.value();
}

void
Fleet::evaluateWindow(std::size_t window, double boundary_sec)
{
    // Promote pods whose provisioning delay has elapsed.
    for (Pod &p : pods_) {
        if (p.info.state == PodState::Provisioning &&
            p.info.readyAtSec <= boundary_sec)
            p.info.state = PodState::Active;
    }

    int routable = 0, provisioning = 0;
    FineFixedPointSum backlog;
    for (const Pod &p : pods_) {
        if (p.info.state == PodState::Active) {
            ++routable;
            backlog.add(
                p.server->admission().backlogSec(boundary_sec));
        } else if (p.info.state == PodState::Provisioning) {
            ++provisioning;
        }
    }

    AutoscalerSignal sig;
    sig.backlogSecPerPod =
        backlog.value() / static_cast<double>(std::max(1, routable));
    // Shed fraction from the fleet's own submit-thread counters
    // (the shared time series attributes served results at
    // completion time, which lags the boundary nondeterministically).
    if (window < winSubmitted_.size() &&
        winSubmitted_[window] > 0) {
        sig.shedFraction =
            static_cast<double>(winShed_[window]) /
            static_cast<double>(winSubmitted_[window]);
    }

    const ScaleDecision d =
        scaler_.evaluate(sig, routable, provisioning);
    if (d == ScaleDecision::Up) {
        launchPod(boundary_sec);
        ts_.recordScaleEvent(boundary_sec, routable, '+');
    } else if (d == ScaleDecision::Down) {
        // Drain the active pod with the least booked backlog (ties
        // to the youngest): cheapest to retire, and the fleet sheds
        // nothing it could have served.
        Pod *victim = nullptr;
        double best = std::numeric_limits<double>::infinity();
        for (Pod &p : pods_) {
            if (p.info.state != PodState::Active)
                continue;
            const double b =
                p.server->admission().backlogSec(boundary_sec);
            if (victim == nullptr || b <= best) {
                victim = &p;
                best = b;
            }
        }
        TSP_ASSERT(victim != nullptr);
        victim->info.state = PodState::Draining;
        // Seal the open batch so the remaining backlog executes
        // without waiting for traffic that will never route here.
        victim->server->flushOpenBatch();
        ts_.recordScaleEvent(boundary_sec, routable - 1, '-');
    }

    // Retire draining pods whose entire booking is in the past.
    for (Pod &p : pods_) {
        if (p.info.state != PodState::Draining)
            continue;
        if (p.server->admission().busyUntil() <= boundary_sec) {
            p.server->drain();
            p.info.state = PodState::Drained;
            ts_.recordScaleEvent(boundary_sec, activePods(), '=');
        }
    }

    // The boundary is the first instant of window + 1.
    ts_.recordPodCount(boundary_sec, activePods());
}

void
Fleet::advanceTo(double now_sec)
{
    for (;;) {
        const double boundary =
            static_cast<double>(nextWindow_ + 1) * cfg_.windowSec;
        if (boundary > now_sec)
            break;
        evaluateWindow(nextWindow_, boundary);
        ++nextWindow_;
    }
    // Mid-window promotion: a pod becomes routable the moment its
    // provisioning delay elapses, not at the next boundary.
    for (Pod &p : pods_) {
        if (p.info.state == PodState::Provisioning &&
            p.info.readyAtSec <= now_sec)
            p.info.state = PodState::Active;
    }
}

void
Fleet::submit(std::vector<std::int8_t> input, double arrival_sec,
              double deadline_sec)
{
    submitModel(0, 0, std::move(input), arrival_sec, deadline_sec);
}

void
Fleet::submitModel(int model, int slo_class,
                   std::vector<std::int8_t> input,
                   double arrival_sec, double deadline_sec)
{
    const std::size_t w = static_cast<std::size_t>(
        std::floor(std::max(0.0, arrival_sec) / cfg_.windowSec));
    if (winSubmitted_.size() <= w) {
        winSubmitted_.resize(w + 1, 0);
        winShed_.resize(w + 1, 0);
    }
    ++winSubmitted_[w];

    // Route to the pod whose exact admission state proves the
    // earliest completion for this model — swap cost included, so
    // family affinity emerges from the arithmetic rather than a
    // placement heuristic (ties to the lowest id).
    Pod *best = nullptr;
    double best_completion =
        std::numeric_limits<double>::infinity();
    for (Pod &p : pods_) {
        if (p.info.state != PodState::Active)
            continue;
        const double c =
            p.server->admission().earliestCompletionFor(model,
                                                        arrival_sec);
        if (best == nullptr || c < best_completion) {
            best = &p;
            best_completion = c;
        }
    }
    TSP_ASSERT(best != nullptr); // minPods >= 1 keeps one routable.

    // Fleet-level shed: every routable pod provably misses the
    // deadline, so not one chip cycle is spent. (Conservative under
    // batching: a feasible join into an already-open batch could
    // still make it, but a shed never wastes capacity on a loser.)
    if (deadline_sec > 0.0 && best_completion > deadline_sec) {
        ++shed_;
        ++winShed_[w];
        ts_.recordShed(arrival_sec);
        return;
    }

    best->server->submitModelDetached(
        model, slo_class, std::move(input), arrival_sec,
        deadline_sec, serve::InferenceServer::OnFull::Block);
}

void
Fleet::drainAll()
{
    for (Pod &p : pods_) {
        if (p.info.state == PodState::Drained)
            continue;
        p.server->flushOpenBatch();
        p.server->drain();
    }
}

} // namespace tsp::fleet
