/**
 * @file
 * Deterministic pod autoscaler.
 *
 * The scaler is a pure state machine evaluated once per observation
 * window on *virtual-time* signals only: the mean booked backlog per
 * routable pod (AdmissionController::backlogSec — the sum of booked
 * busy time still ahead of `now`, a pure function of the admission
 * history) and the fraction of the window's submissions the fleet
 * shed. Neither signal depends on host-thread scheduling, so the
 * entire scaling trajectory replays identically for a given seed.
 * Signals that are only knowable after execution on a wall clock
 * (actual queue wait, worker idle time) are deliberately *not* used.
 *
 * Hysteresis: a scale-up needs `upWindows` consecutive pressured
 * windows, a drain needs `downWindows` consecutive idle ones, and any
 * decision resets both streaks — which doubles as a cooldown so the
 * scaler cannot flap faster than its own evidence accumulates.
 */

#ifndef TSP_FLEET_AUTOSCALER_HH
#define TSP_FLEET_AUTOSCALER_HH

#include <cstdint>

namespace tsp::fleet {

/** Autoscaler policy knobs. */
struct AutoscalerConfig
{
    /** Pod-count bounds (drains never go below min; launches never
     * exceed max, counting pods still provisioning). */
    int minPods = 1;
    int maxPods = 8;

    /** Mean booked backlog per routable pod (virtual seconds) at or
     * above which a window counts as pressured. */
    double scaleUpBacklogSec = 0.5;

    /** Shed fraction at or above which a window counts as pressured
     * even if backlog looks fine (capacity is provably short). */
    double scaleUpShedFrac = 0.01;

    /** Mean booked backlog per routable pod below which a window
     * counts as idle (only windows with zero sheds qualify). */
    double scaleDownBacklogSec = 0.05;

    /** Consecutive pressured windows required to launch a pod. */
    int upWindows = 2;

    /** Consecutive idle windows required to drain a pod. */
    int downWindows = 5;

    /** Virtual seconds between a launch decision and the new pod
     * becoming routable (models provisioning / weight install). */
    double provisionSec = 2.0;
};

/** Window-level observation the fleet feeds the scaler. */
struct AutoscalerSignal
{
    /** Mean booked backlog per routable pod, virtual seconds. */
    double backlogSecPerPod = 0.0;

    /** Fraction of this window's submissions shed by the fleet. */
    double shedFraction = 0.0;
};

/** What the fleet should do after a window. */
enum class ScaleDecision : std::uint8_t {
    Hold,
    Up,   ///< Launch one pod.
    Down, ///< Start draining one pod.
};

/** @return a stable lower-case name for @p d. */
const char *scaleDecisionName(ScaleDecision d);

/** The hysteresis state machine (one instance per fleet). */
class Autoscaler
{
  public:
    explicit Autoscaler(AutoscalerConfig cfg);

    /**
     * Evaluates one window.
     *
     * @param s the window's signals.
     * @param routable_pods pods currently accepting traffic.
     * @param provisioning_pods pods launched but not yet routable.
     * @return the decision; Up/Down reset both streaks (cooldown).
     */
    ScaleDecision evaluate(const AutoscalerSignal &s,
                           int routable_pods,
                           int provisioning_pods);

    const AutoscalerConfig &config() const { return cfg_; }
    int upStreak() const { return upStreak_; }
    int downStreak() const { return downStreak_; }

  private:
    AutoscalerConfig cfg_;
    int upStreak_ = 0;
    int downStreak_ = 0;
};

} // namespace tsp::fleet

#endif // TSP_FLEET_AUTOSCALER_HH
