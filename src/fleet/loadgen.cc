#include "fleet/loadgen.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/seed.hh"

namespace tsp::fleet {

const char *
arrivalModelName(ArrivalModel m)
{
    switch (m) {
      case ArrivalModel::Poisson: return "poisson";
      case ArrivalModel::Bursty: return "bursty";
      case ArrivalModel::Diurnal: return "diurnal";
    }
    return "unknown";
}

LoadGenerator::LoadGenerator(LoadGenConfig cfg)
    : cfg_(cfg),
      arrivals_(deriveSeed(cfg.seed, SeedDomain::Arrival)),
      payload_(deriveSeed(cfg.seed, SeedDomain::Payload)),
      burst_(deriveSeed(cfg.seed, SeedDomain::Burst))
{
    TSP_ASSERT(cfg_.rateRps > 0.0);
    if (cfg_.model == ArrivalModel::Bursty) {
        TSP_ASSERT(cfg_.burstFactor >= 1.0);
        TSP_ASSERT(cfg_.burstFraction > 0.0 &&
                   cfg_.burstFraction < 1.0);
        // The base-state rate rate*(1 - f*factor)/(1 - f) must stay
        // non-negative for the long-run mean to equal rateRps.
        TSP_ASSERT(cfg_.burstFraction * cfg_.burstFactor <= 1.0);
        TSP_ASSERT(cfg_.meanBurstSec > 0.0);
    }
    if (cfg_.model == ArrivalModel::Diurnal) {
        TSP_ASSERT(cfg_.diurnalAmplitude >= 0.0 &&
                   cfg_.diurnalAmplitude < 1.0);
        TSP_ASSERT(cfg_.diurnalPeriodSec > 0.0);
    }
}

double
LoadGenerator::expGap(double rate)
{
    // Inverse-CDF draw; 1 - u is in (0, 1] so the log is finite.
    const double u = arrivals_.nextDouble();
    return -std::log(1.0 - u) / rate;
}

double
LoadGenerator::nextPoisson()
{
    now_ += expGap(cfg_.rateRps);
    return now_;
}

double
LoadGenerator::nextBursty()
{
    // Two-state MMPP. State durations are exponential (mean
    // meanBurstSec in burst, meanBurstSec*(1-f)/f in base, so the
    // long-run burst-time fraction is f); rates are chosen so the
    // time-weighted mean is exactly rateRps. Memorylessness lets us
    // discard a gap that crosses a state boundary and redraw from
    // the boundary in the new state.
    const double f = cfg_.burstFraction;
    const double burst_rate = cfg_.rateRps * cfg_.burstFactor;
    const double base_rate =
        cfg_.rateRps * (1.0 - f * cfg_.burstFactor) / (1.0 - f);
    const double mean_base_sec =
        cfg_.meanBurstSec * (1.0 - f) / f;
    for (;;) {
        if (now_ >= stateEndSec_) {
            // First call starts in the base state; afterwards states
            // alternate at each boundary.
            if (stateEndSec_ == 0.0)
                inBurst_ = false;
            else
                inBurst_ = !inBurst_;
            const double mean =
                inBurst_ ? cfg_.meanBurstSec : mean_base_sec;
            const double u = burst_.nextDouble();
            stateEndSec_ = now_ - std::log(1.0 - u) * mean;
        }
        const double rate = inBurst_ ? burst_rate : base_rate;
        if (rate <= 0.0) {
            // Degenerate derated base state (f*factor == 1): all
            // traffic arrives in bursts; skip to the boundary.
            now_ = stateEndSec_;
            continue;
        }
        const double t = now_ + expGap(rate);
        if (t <= stateEndSec_) {
            now_ = t;
            return now_;
        }
        now_ = stateEndSec_;
    }
}

double
LoadGenerator::nextDiurnal()
{
    // Thinning (Lewis-Shedler): draw from a Poisson stream at the
    // peak rate and accept each candidate with probability
    // lambda(t)/lambda_max.
    const double lambda_max =
        cfg_.rateRps * (1.0 + cfg_.diurnalAmplitude);
    for (;;) {
        now_ += expGap(lambda_max);
        const double lambda =
            cfg_.rateRps *
            (1.0 + cfg_.diurnalAmplitude *
                       std::sin(2.0 * M_PI * now_ /
                                cfg_.diurnalPeriodSec));
        if (arrivals_.nextDouble() * lambda_max <= lambda)
            return now_;
    }
}

double
LoadGenerator::nextArrivalSec()
{
    switch (cfg_.model) {
      case ArrivalModel::Poisson: return nextPoisson();
      case ArrivalModel::Bursty: return nextBursty();
      case ArrivalModel::Diurnal: return nextDiurnal();
    }
    return nextPoisson();
}

void
LoadGenerator::fillPayload(std::vector<std::int8_t> &buf)
{
    buf.resize(cfg_.inputBytes);
    // 8 bytes per draw keeps payload generation off the profile even
    // at millions of requests.
    std::size_t i = 0;
    while (i + 8 <= buf.size()) {
        std::uint64_t w = payload_.next();
        for (int b = 0; b < 8; ++b) {
            buf[i++] = static_cast<std::int8_t>(
                static_cast<std::uint8_t>(w & 0xff));
            w >>= 8;
        }
    }
    if (i < buf.size()) {
        std::uint64_t w = payload_.next();
        while (i < buf.size()) {
            buf[i++] = static_cast<std::int8_t>(
                static_cast<std::uint8_t>(w & 0xff));
            w >>= 8;
        }
    }
}

} // namespace tsp::fleet
