/**
 * @file
 * Serving-layer request and result types.
 *
 * All timestamps are *modeled* (virtual) seconds of chip time at the
 * configured clock, not host wall time: the simulator runs orders of
 * magnitude slower than the silicon it models, so the serving layer
 * keeps its own virtual timeline. The load generator stamps each
 * request's arrival on that timeline, the admission controller books
 * exact start/completion times on it (possible only because the
 * compiled program's cycle count is known before it runs — paper
 * Eq. 4, IV.F, V.c), and the worker's measured chip cycles are
 * checked against the booking after the fact.
 */

#ifndef TSP_SERVE_REQUEST_HH
#define TSP_SERVE_REQUEST_HH

#include <cstdint>
#include <vector>

#include "arch/types.hh"
#include "ref/qnn.hh"

namespace tsp::serve {

/** Monotonically increasing per-server request identifier. */
using RequestId = std::uint64_t;

/** What happened to a request. */
enum class Outcome : std::uint8_t {
    /** Ran on a chip and met its deadline (or had none). */
    Served,

    /**
     * Rejected at admission: the provably earliest completion time
     * already exceeded the deadline, so not a single chip cycle was
     * spent on it — the capability the deterministic schedule buys.
     */
    RejectedDeadline,

    /** Rejected by queue backpressure (bounded queue was full). */
    RejectedQueueFull,

    /**
     * Rejected before admission: the request is malformed for the
     * compiled workload (e.g. its input length does not match the
     * model's input tensor). Previously such a request would fault
     * inside a worker thread; now it never reaches one.
     */
    RejectedInvalid,

    /**
     * Served, but completed after its deadline. With exact admission
     * booking this cannot happen unless the measured cycle count
     * diverges from the compiler's prediction (i.e. a simulator bug).
     */
    DeadlineMissed,

    /** Execution failed (cycle budget exhausted — see RunResult). */
    Failed,

    /**
     * An uncorrectable error machine-checked the chip and every
     * permitted retry (bounded by ServerConfig::maxRetries and the
     * request's deadline) machine-checked too. The output is never
     * populated from a machine-checked run — corrupted data cannot
     * reach a client as a silent success.
     */
    FailedMachineCheck,
};

/** @return a stable lower-case name for @p o. */
const char *outcomeName(Outcome o);

/** One inference request as submitted by a client. */
struct Request
{
    RequestId id = 0;

    /** Dense [h x w x c] int8 input, model-input shaped. */
    std::vector<std::int8_t> input;

    /** Arrival time on the virtual timeline, seconds. */
    double arrivalSec = 0.0;

    /**
     * Absolute completion deadline on the virtual timeline, seconds;
     * <= 0 means no deadline. Inside the server this is the
     * *effective* deadline — the caller's deadline with the tenant
     * SLO class's multiplier already applied to its slack.
     */
    double deadlineSec = 0.0;

    /** Model family this request targets (registry index). */
    int model = 0;

    /** Tenant SLO class (ServerConfig::sloClasses index). */
    int sloClass = 0;
};

/** The serving layer's answer for one request. */
struct Result
{
    RequestId id = 0;
    Outcome outcome = Outcome::Failed;

    /** Model output (valid only when outcome is Served). */
    ref::QTensor output;

    /** Model family that served (or rejected) this request. */
    int model = 0;

    /** Times this request's open batch was preempted by a
     * higher-priority arrival before it sealed (each preemption
     * re-queued it; it was never dropped). */
    std::uint32_t preemptions = 0;

    /** Samples in the batch this request was served in. */
    int batch = 1;

    /** Cycles the admission controller predicted for service (the
     * whole batch's exact cycles(batch)). */
    Cycle predictedCycles = 0;

    /** Cycles the chip actually consumed (0 if never scheduled). */
    Cycle measuredCycles = 0;

    /** Re-runs after machine checks (0 = served on first attempt). */
    std::uint32_t retries = 0;

    /** Machine-check recoveries served by snapshot migration rather
     *  than a full retry (see ServerConfig::migrateOnMachineCheck). */
    std::uint32_t migrations = 0;

    /** Uncorrectable errors raised across this request's attempts. */
    std::uint64_t machineChecks = 0;

    /** Single-bit errors corrected across this request's attempts. */
    std::uint64_t correctedErrors = 0;

    /** Virtual-time bookings (valid unless rejected for queue-full). */
    double arrivalSec = 0.0;
    double startSec = 0.0;      ///< Service start.
    double completionSec = 0.0; ///< Service end (admission-exact).

    /** @return virtual seconds spent queued before service. */
    double queueSec() const { return startSec - arrivalSec; }

    /** @return virtual seconds from arrival to completion. */
    double latencySec() const { return completionSec - arrivalSec; }
};

} // namespace tsp::serve

#endif // TSP_SERVE_REQUEST_HH
