/**
 * @file
 * Deadline-aware admission control over a pool of identical chips.
 *
 * The TSP's schedule is fully static: a compiled program's cycle
 * count is known *before* it runs (paper Eq. 4; IV.F; V.c — "the
 * compiler knows the exact latency of every program"). For a serving
 * tier this turns admission control from an estimation problem into
 * arithmetic: with FIFO dispatch over W identical workers whose
 * service time is a known constant, a new request's completion time
 * is exactly
 *
 *   completion = max(arrival, earliest worker-free time) + service
 *
 * so a request that cannot meet its deadline is rejected *before a
 * single chip cycle is spent on it*, and every admitted request's
 * measured latency equals the admission-time booking. Contrast the
 * cache-based baseline (src/baseline), where latency is only known
 * after the fact and admission control must over-provision against
 * the tail.
 */

#ifndef TSP_SERVE_ADMISSION_HH
#define TSP_SERVE_ADMISSION_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "arch/types.hh"

namespace tsp::serve {

/** Admission verdict plus the exact virtual-time booking. */
struct Admission
{
    /** True when the request was admitted (booking committed). */
    bool admitted = false;

    /** Worker slot the booking assumed (informational). */
    int worker = -1;

    /** Exact service start, virtual seconds. */
    double startSec = 0.0;

    /** Exact completion, virtual seconds. */
    double completionSec = 0.0;
};

/**
 * Books exact per-worker busy intervals on the virtual timeline.
 *
 * Thread-safe; admit() is a single compare-and-book under a mutex.
 * Rejected requests leave no trace in the booking state.
 */
class AdmissionController
{
  public:
    /**
     * @param workers identical chip workers in the pool (>= 1).
     * @param service_cycles exact cycles of one inference (the
     *        compiler's Lowering::finishCycle()).
     * @param cycle_period_sec seconds per chip cycle.
     */
    AdmissionController(int workers, Cycle service_cycles,
                        double cycle_period_sec);

    /**
     * Decides one request. @p deadline_sec <= 0 means no deadline
     * (always admitted). On admission the chosen worker's free time
     * advances to the booked completion; on rejection nothing
     * changes.
     */
    Admission admit(double arrival_sec, double deadline_sec);

    /** @return exact service seconds per request. */
    double serviceSec() const { return serviceSec_; }

    /** @return exact service cycles per request. */
    Cycle serviceCycles() const { return serviceCycles_; }

    /** @return requests admitted so far. */
    std::uint64_t admitted() const;

    /** @return requests rejected for provably-missed deadlines. */
    std::uint64_t rejected() const;

    /**
     * @return the earliest possible completion for a request
     * arriving at @p arrival_sec, without booking anything — what a
     * client could poll to pick a feasible deadline.
     */
    double earliestCompletion(double arrival_sec) const;

  private:
    int earliestWorkerLocked() const;

    const Cycle serviceCycles_;
    const double serviceSec_;

    mutable std::mutex mu_;
    std::vector<double> freeAt_; ///< Per-worker busy-until, seconds.
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
};

} // namespace tsp::serve

#endif // TSP_SERVE_ADMISSION_HH
