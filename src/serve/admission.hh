/**
 * @file
 * Deadline-aware admission control over a pool of identical chips.
 *
 * The TSP's schedule is fully static: a compiled program's cycle
 * count is known *before* it runs (paper Eq. 4; IV.F; V.c — "the
 * compiler knows the exact latency of every program"). For a serving
 * tier this turns admission control from an estimation problem into
 * arithmetic: with FIFO dispatch over W identical workers whose
 * service time is a known constant, a new request's completion time
 * is exactly
 *
 *   completion = max(arrival, earliest worker-free time) + service
 *
 * so a request that cannot meet its deadline is rejected *before a
 * single chip cycle is spent on it*, and every admitted request's
 * measured latency equals the admission-time booking. Contrast the
 * cache-based baseline (src/baseline), where latency is only known
 * after the fact and admission control must over-provision against
 * the tail.
 *
 * Batching extends the same arithmetic: given the exact cycles(b)
 * table of the compiled batch programs, joining a request to an open
 * batch of size k re-books the batch as
 *
 *   completion = max(worker-free, latest member arrival) + service(k+1)
 *
 * and the join is *proved* feasible (every member still meets its
 * deadline) or refused — the batcher never gambles on a window.
 *
 * Multi-model pools extend it once more. Each worker remembers which
 * model family's weights it last staged; booking a batch of model m
 * on a worker holding another family adds the *exact* modeled swap
 * time (weight image over the host link) ahead of the service
 * window:
 *
 *   ready      = max(arrival, worker-free) + swap(m)   [0 if staged]
 *   completion = max(ready, latest member arrival) + service(m, k)
 *
 * Worker choice minimizes that completion (ties: earliest-free, then
 * lowest index), which for a single family — where every swap term
 * is zero — reduces *exactly* to the classic earliest-free-worker
 * rule, so single-model bookings are bit-identical to the
 * pre-registry controller.
 *
 * Priority preemption stays inside the same arithmetic: only the
 * *open* (not yet dispatched) batch is preemptible, and its booking
 * is a pure function of admission history, so rolling it back
 * (worker free-time, staged-model, admit counters) and re-booking
 * the preemptor is deterministic. Queued/running batches are never
 * preempted — their revocation would depend on host thread timing.
 */

#ifndef TSP_SERVE_ADMISSION_HH
#define TSP_SERVE_ADMISSION_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "arch/types.hh"

namespace tsp::serve {

/** Admission verdict plus the exact virtual-time booking. */
struct Admission
{
    /** True when the request was admitted (booking committed). */
    bool admitted = false;

    /** Worker slot the booking assumed (informational). */
    int worker = -1;

    /** Samples in the booked batch after this admission. */
    int batch = 1;

    /** Exact service start, virtual seconds (after any swap). */
    double startSec = 0.0;

    /** Exact completion, virtual seconds. */
    double completionSec = 0.0;

    /** Exact modeled weight-swap seconds booked ahead of the
     * service window (0 when the worker already stages the model). */
    double swapSec = 0.0;
};

/**
 * Exact per-model timing providers for a multi-model pool. All three
 * must be pure functions of their arguments (they may lazily compile
 * and memoize — BatchProgramCache guarantees the result is
 * independent of *when* it is first called).
 */
struct ModelTiming
{
    /** Exact cycles of model @p m's compiled batch-@p b program. */
    std::function<Cycle(int m, int b)> cyclesOf;

    /** Largest batch size model @p m compiles. */
    std::function<int(int m)> maxBatchOf;

    /** Modeled seconds to stage model @p m's weight image onto a
     * worker holding another family (null ⇒ swaps are free). */
    std::function<double(int m)> swapSecOf;

    /** @return single-family timing over a fixed exact-cycles table
     * (cycles_by_batch[b-1] = cycles(b), strictly increasing). */
    static ModelTiming fromTable(std::vector<Cycle> cycles_by_batch);
};

/**
 * Books exact per-worker busy intervals on the virtual timeline.
 *
 * Thread-safe; admit() is a single compare-and-book under a mutex.
 * Rejected requests leave no trace in the booking state. The
 * batch-forming flow (open / tryJoin / seal / rollbackOpen) must be
 * serialized by the caller (the server's submit lock does this):
 * only one batch may be open at a time.
 */
class AdmissionController
{
  public:
    /**
     * @param workers identical chip workers in the pool (>= 1).
     * @param service_cycles exact cycles of one inference (the
     *        compiler's Lowering::finishCycle()).
     * @param cycle_period_sec seconds per chip cycle.
     */
    AdmissionController(int workers, Cycle service_cycles,
                        double cycle_period_sec);

    /**
     * Batch-capable controller: @p cycles_by_batch[b-1] is the exact
     * cycle count of the compiled batch-b program (strictly
     * increasing; maxBatch() = its size).
     */
    AdmissionController(int workers,
                        std::vector<Cycle> cycles_by_batch,
                        double cycle_period_sec);

    /**
     * Multi-model controller over @p models families; every worker
     * starts staged with model 0 (the registry's first family).
     * Timing is pulled lazily so batch sizes that never form are
     * never compiled.
     */
    AdmissionController(int workers, int models, ModelTiming timing,
                        double cycle_period_sec);

    /**
     * Decides one request as a batch of one. @p deadline_sec <= 0
     * means no deadline (always admitted). On admission the chosen
     * worker's free time advances to the booked completion; on
     * rejection nothing changes.
     */
    Admission admit(double arrival_sec, double deadline_sec);

    /**
     * Opens a new batch of model @p model with its first member:
     * books the completion-minimizing worker (swap included), but
     * leaves the batch open so later arrivals of the same model may
     * join. Fails (nothing booked) only when the first member's own
     * deadline is infeasible. At most one batch may be open; seal()
     * the previous one first.
     */
    Admission open(double arrival_sec, double deadline_sec,
                   int model = 0);

    /**
     * Tries to grow the open batch by one member (same model). The
     * re-booked batch starts at max(swap-ready, latest member
     * arrival) and takes service(model, k+1); the join succeeds only
     * if that completion meets every current member's deadline AND
     * the candidate's — otherwise the open batch's booking is left
     * untouched and the caller should seal it and open a new one.
     * Requires an open batch.
     */
    Admission tryJoin(double arrival_sec, double deadline_sec);

    /** Closes the open batch; @return its final booking. */
    Admission seal();

    /**
     * Reverts the open batch's booking completely — worker free
     * time, staged-model marker, and admit counters return to their
     * pre-open() values — and closes it. The caller owns re-queueing
     * the evicted members; nothing is dropped here. Requires an open
     * batch. This is the preemption primitive: it exists *only* for
     * the open batch, whose booking is still pure admission state.
     */
    void rollbackOpen();

    /**
     * @return the exact completion a batch-1 request of @p model
     * arriving at @p arrival_sec would book if the current open
     * batch were rolled back first — the preemption feasibility
     * probe. Books nothing. Requires an open batch.
     */
    double completionIfPreempted(double arrival_sec,
                                 int model) const;

    /** @return true while a batch is open. */
    bool hasOpenBatch() const;

    /** @return the open batch's model family. */
    int openModel() const;

    /** @return the open batch's current size. */
    int openSize() const;

    /** @return largest compiled batch size (model 0). */
    int maxBatch() const;

    /** @return largest compiled batch size of @p model. */
    int maxBatchFor(int model) const;

    /** @return number of model families booked over. */
    int models() const { return models_; }

    /** @return exact service seconds for a batch of @p b (model 0). */
    double serviceSec(int b = 1) const;

    /** @return exact service cycles for a batch of @p b (model 0). */
    Cycle serviceCycles(int b = 1) const;

    /** @return exact service seconds for @p model's batch of @p b. */
    double serviceSecFor(int model, int b) const;

    /** @return exact service cycles for @p model's batch of @p b. */
    Cycle serviceCyclesFor(int model, int b) const;

    /** @return requests admitted so far. */
    std::uint64_t admitted() const;

    /** @return requests rejected for provably-missed deadlines. */
    std::uint64_t rejected() const;

    /**
     * @return the earliest possible completion for a batch-1 request
     * (model 0) arriving at @p arrival_sec, without booking anything
     * — what a client could poll to pick a feasible deadline. This
     * is also the fleet load-shedder's primitive: a request whose
     * deadline is below every pod's earliest completion is provably
     * infeasible and can be shed before it touches a queue.
     */
    double earliestCompletion(double arrival_sec) const;

    /** @return earliestCompletion() for @p model, swap included —
     * the fleet's model-aware routing/shedding primitive. */
    double earliestCompletionFor(int model,
                                 double arrival_sec) const;

    /** @return the worker index the next open()/admit() would book
     * (min free-time, lowest index on ties). */
    int earliestWorker() const;

    /** @return the worker the next open() of @p model arriving at
     * @p arrival_sec would book (min completion; ties: min
     * free-time, then lowest index — identical to earliestWorker()
     * when every swap term is zero). */
    int bestWorkerFor(int model, double arrival_sec) const;

    /** @return the model family worker @p w last staged. */
    int stagedModel(int w) const;

    /** @return the latest booked completion across all workers —
     * virtual seconds; a pod whose busyUntil() has passed has
     * drained its entire booking. */
    double busyUntil() const;

    /**
     * @return total booked-but-unfinished work at virtual time
     * @p now_sec: sum over workers of max(0, freeAt - now). This is
     * the *virtual* queue depth (in seconds of service) — unlike the
     * host-side queue length it is a pure function of the admission
     * history, so autoscaling decisions driven by it replay
     * identically however the host threads are scheduled.
     */
    double backlogSec(double now_sec) const;

  private:
    int earliestWorkerLocked() const;
    int bestWorkerLocked(int model, double arrival_sec) const;
    double swapSecLocked(int w, int model) const;
    double serviceSecLocked(int model, int b) const;
    Admission openLocked(double arrival_sec, double deadline_sec,
                         int model);
    void rollbackOpenLocked();

    ModelTiming timing_;
    const double periodSec_;
    int models_ = 1;

    mutable std::mutex mu_;
    std::vector<double> freeAt_; ///< Per-worker busy-until, seconds.
    std::vector<int> staged_;    ///< Per-worker staged model family.
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;

    /** The (single) open batch's booking state. */
    struct OpenBatch
    {
        bool active = false;
        int worker = -1;
        int model = 0;
        int size = 0;
        double baseFree = 0.0;    ///< Worker free time before open.
        int prevStaged = 0;       ///< Worker's staged model before.
        double swapSec = 0.0;     ///< Booked swap (0 = staged).
        double readyAt = 0.0;     ///< Worker swap-done time.
        double maxArrival = 0.0;  ///< Latest member arrival.
        double minDeadline = 0.0; ///< Tightest member deadline (0 =
                                  ///< none have one).
        double startSec = 0.0;
        double completionSec = 0.0;
    };
    OpenBatch open_;
};

} // namespace tsp::serve

#endif // TSP_SERVE_ADMISSION_HH
