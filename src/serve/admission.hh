/**
 * @file
 * Deadline-aware admission control over a pool of identical chips.
 *
 * The TSP's schedule is fully static: a compiled program's cycle
 * count is known *before* it runs (paper Eq. 4; IV.F; V.c — "the
 * compiler knows the exact latency of every program"). For a serving
 * tier this turns admission control from an estimation problem into
 * arithmetic: with FIFO dispatch over W identical workers whose
 * service time is a known constant, a new request's completion time
 * is exactly
 *
 *   completion = max(arrival, earliest worker-free time) + service
 *
 * so a request that cannot meet its deadline is rejected *before a
 * single chip cycle is spent on it*, and every admitted request's
 * measured latency equals the admission-time booking. Contrast the
 * cache-based baseline (src/baseline), where latency is only known
 * after the fact and admission control must over-provision against
 * the tail.
 *
 * Batching extends the same arithmetic: given the exact cycles(b)
 * table of the compiled batch programs, joining a request to an open
 * batch of size k re-books the batch as
 *
 *   completion = max(worker-free, latest member arrival) + service(k+1)
 *
 * and the join is *proved* feasible (every member still meets its
 * deadline) or refused — the batcher never gambles on a window.
 */

#ifndef TSP_SERVE_ADMISSION_HH
#define TSP_SERVE_ADMISSION_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "arch/types.hh"

namespace tsp::serve {

/** Admission verdict plus the exact virtual-time booking. */
struct Admission
{
    /** True when the request was admitted (booking committed). */
    bool admitted = false;

    /** Worker slot the booking assumed (informational). */
    int worker = -1;

    /** Samples in the booked batch after this admission. */
    int batch = 1;

    /** Exact service start, virtual seconds. */
    double startSec = 0.0;

    /** Exact completion, virtual seconds. */
    double completionSec = 0.0;
};

/**
 * Books exact per-worker busy intervals on the virtual timeline.
 *
 * Thread-safe; admit() is a single compare-and-book under a mutex.
 * Rejected requests leave no trace in the booking state. The
 * batch-forming flow (open / tryJoin / seal) must be serialized by
 * the caller (the server's submit lock does this): only one batch may
 * be open at a time.
 */
class AdmissionController
{
  public:
    /**
     * @param workers identical chip workers in the pool (>= 1).
     * @param service_cycles exact cycles of one inference (the
     *        compiler's Lowering::finishCycle()).
     * @param cycle_period_sec seconds per chip cycle.
     */
    AdmissionController(int workers, Cycle service_cycles,
                        double cycle_period_sec);

    /**
     * Batch-capable controller: @p cycles_by_batch[b-1] is the exact
     * cycle count of the compiled batch-b program (strictly
     * increasing; maxBatch() = its size).
     */
    AdmissionController(int workers,
                        std::vector<Cycle> cycles_by_batch,
                        double cycle_period_sec);

    /**
     * Decides one request as a batch of one. @p deadline_sec <= 0
     * means no deadline (always admitted). On admission the chosen
     * worker's free time advances to the booked completion; on
     * rejection nothing changes.
     */
    Admission admit(double arrival_sec, double deadline_sec);

    /**
     * Opens a new batch with its first member: books the earliest
     * worker exactly like admit(), but leaves the batch open so
     * later arrivals may join. Fails (nothing booked) only when the
     * first member's own deadline is infeasible. At most one batch
     * may be open; seal() the previous one first.
     */
    Admission open(double arrival_sec, double deadline_sec);

    /**
     * Tries to grow the open batch by one member. The re-booked
     * batch starts at max(worker-free, latest member arrival) and
     * takes service(k+1); the join succeeds only if that completion
     * meets every current member's deadline AND the candidate's —
     * otherwise the open batch's booking is left untouched and the
     * caller should seal it and open a new one. Requires an open
     * batch.
     */
    Admission tryJoin(double arrival_sec, double deadline_sec);

    /** Closes the open batch; @return its final booking. */
    Admission seal();

    /** @return true while a batch is open. */
    bool hasOpenBatch() const;

    /** @return largest compiled batch size. */
    int maxBatch() const
    {
        return static_cast<int>(cyclesByBatch_.size());
    }

    /** @return exact service seconds for a batch of @p b. */
    double serviceSec(int b = 1) const;

    /** @return exact service cycles for a batch of @p b. */
    Cycle serviceCycles(int b = 1) const;

    /** @return requests admitted so far. */
    std::uint64_t admitted() const;

    /** @return requests rejected for provably-missed deadlines. */
    std::uint64_t rejected() const;

    /**
     * @return the earliest possible completion for a batch-1 request
     * arriving at @p arrival_sec, without booking anything — what a
     * client could poll to pick a feasible deadline. This is also the
     * fleet load-shedder's primitive: a request whose deadline is
     * below every pod's earliest completion is provably infeasible
     * and can be shed before it touches a queue.
     */
    double earliestCompletion(double arrival_sec) const;

    /** @return the worker index the next open()/admit() would book
     * (min free-time, lowest index on ties). */
    int earliestWorker() const;

    /** @return the latest booked completion across all workers —
     * virtual seconds; a pod whose busyUntil() has passed has
     * drained its entire booking. */
    double busyUntil() const;

    /**
     * @return total booked-but-unfinished work at virtual time
     * @p now_sec: sum over workers of max(0, freeAt - now). This is
     * the *virtual* queue depth (in seconds of service) — unlike the
     * host-side queue length it is a pure function of the admission
     * history, so autoscaling decisions driven by it replay
     * identically however the host threads are scheduled.
     */
    double backlogSec(double now_sec) const;

  private:
    int earliestWorkerLocked() const;
    double serviceSecLocked(int b) const;

    const std::vector<Cycle> cyclesByBatch_;
    const double periodSec_;

    mutable std::mutex mu_;
    std::vector<double> freeAt_; ///< Per-worker busy-until, seconds.
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;

    /** The (single) open batch's booking state. */
    struct OpenBatch
    {
        bool active = false;
        int worker = -1;
        int size = 0;
        double baseFree = 0.0;    ///< Worker free time before open.
        double maxArrival = 0.0;  ///< Latest member arrival.
        double minDeadline = 0.0; ///< Tightest member deadline (0 =
                                  ///< none have one).
        double startSec = 0.0;
        double completionSec = 0.0;
    };
    OpenBatch open_;
};

} // namespace tsp::serve

#endif // TSP_SERVE_ADMISSION_HH
