#include "serve/server.hh"

#include "common/logging.hh"

namespace tsp::serve {

InferenceServer::InferenceServer(Lowering &lw, LoweredTensor input,
                                 LoweredTensor output,
                                 ServerConfig cfg)
    : InferenceServer(
          [&lw, &input, &output, &cfg](int) {
              return std::make_unique<SessionBackend>(
                  lw, input, output, cfg.chip);
          },
          lw.finishCycle(), cfg)
{
}

InferenceServer::InferenceServer(const BackendFactory &factory,
                                 Cycle service_cycles,
                                 ServerConfig cfg)
    : cfg_(cfg),
      admission_(cfg.workers, service_cycles,
                 cfg.chip.cyclePeriodSec()),
      queue_(cfg.queueCapacity), paused_(cfg.startPaused),
      metrics_(admission_.serviceSec(), cfg.workers,
               cfg.queueCapacity)
{
    TSP_ASSERT(cfg_.workers >= 1);
    backends_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
        backends_.push_back(factory(w));
    threads_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Result>
InferenceServer::rejectNow(Request req, Outcome outcome,
                           const Admission &booking)
{
    Result r;
    r.id = req.id;
    r.outcome = outcome;
    r.predictedCycles = admission_.serviceCycles();
    r.arrivalSec = req.arrivalSec;
    r.startSec = booking.startSec;
    r.completionSec = booking.completionSec;
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        metrics_.record(r);
    }
    std::promise<Result> p;
    std::future<Result> f = p.get_future();
    p.set_value(std::move(r));
    return f;
}

std::future<Result>
InferenceServer::submit(std::vector<std::int8_t> input,
                        double arrival_sec, double deadline_sec,
                        OnFull on_full)
{
    Request req;
    req.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    req.input = std::move(input);
    req.arrivalSec = arrival_sec;
    req.deadlineSec = deadline_sec;

    std::unique_lock<std::mutex> lock(submitMu_);
    if (shutdown_)
        return rejectNow(std::move(req), Outcome::RejectedQueueFull,
                         Admission{});

    // Backpressure check *before* booking so a full queue never
    // leaves a phantom reservation in the admission state. Only
    // submitters (serialized here) add to the queue, so a non-full
    // observation cannot be invalidated before our push.
    if (on_full == OnFull::Reject && queue_.full())
        return rejectNow(std::move(req), Outcome::RejectedQueueFull,
                         Admission{});

    const Admission booking =
        admission_.admit(arrival_sec, deadline_sec);
    if (!booking.admitted)
        return rejectNow(std::move(req), Outcome::RejectedDeadline,
                         booking);

    const RequestId id = req.id;
    Job job;
    job.req = std::move(req);
    job.booking = booking;
    std::future<Result> f = job.promise.get_future();

    {
        std::lock_guard<std::mutex> dl(doneMu_);
        ++inflight_;
    }
    // push() may block (OnFull::Block) while workers drain; it only
    // fails once the queue is closed, i.e. during shutdown. The
    // booking is already committed, but the server is going away, so
    // the stale reservation is harmless.
    if (!queue_.push(std::move(job))) {
        std::lock_guard<std::mutex> dl(doneMu_);
        --inflight_;
        Result r;
        r.id = id;
        r.outcome = Outcome::RejectedQueueFull;
        // The original promise died with the rejected job.
        std::promise<Result> p;
        f = p.get_future();
        p.set_value(std::move(r));
    }
    return f;
}

void
InferenceServer::workerLoop(int w)
{
    Backend &be = *backends_[static_cast<std::size_t>(w)];
    const double period = cfg_.chip.cyclePeriodSec();
    Job job;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(pauseMu_);
            pauseCv_.wait(lock, [&] { return !paused_; });
        }
        if (!queue_.pop(job))
            return; // Closed and drained.

        Result r;
        r.id = job.req.id;
        r.predictedCycles = admission_.serviceCycles();
        r.arrivalSec = job.req.arrivalSec;
        r.startSec = job.booking.startSec;
        r.completionSec = job.booking.completionSec;

        const double service = admission_.serviceSec();
        RunResult rr;
        for (;;) {
            // reset() rebuilds a condemned (or timed-out) engine,
            // with a derived fault seed so a retry does not replay
            // the identical environmental upset.
            be.reset();
            be.writeInput(job.req.input);
            const std::uint64_t cor0 = be.correctedErrors();
            rr = be.runBounded(cfg_.maxCyclesPerRun);
            r.measuredCycles = rr.cycles;
            r.correctedErrors += be.correctedErrors() - cor0;
            if (rr.status != RunStatus::MachineCheck)
                break;
            r.machineChecks += be.machineCheckCount();
            // Retry only while another full service time still fits
            // ahead of the deadline and the retry budget holds.
            const double retry_completion =
                r.startSec +
                static_cast<double>(r.retries + 2) * service;
            if (static_cast<int>(r.retries) >= cfg_.maxRetries ||
                (job.req.deadlineSec > 0.0 &&
                 retry_completion > job.req.deadlineSec)) {
                break;
            }
            ++r.retries;
        }

        if (rr.status == RunStatus::MachineCheck) {
            // Every permitted attempt machine-checked. The output is
            // never read from a condemned engine.
            r.outcome = Outcome::FailedMachineCheck;
        } else if (!rr.completed) {
            // Timeout propagates as an explicit failure; the backend
            // rebuilds its engine on the next reset().
            r.outcome = Outcome::Failed;
        } else {
            r.output = be.readOutput();
            bool recheck = false;
            if (rr.cycles != r.predictedCycles) {
                // Defensive path — determinism says this is dead
                // code; if it ever fires, re-derive the completion
                // from the measured cycles and re-check the deadline.
                warn("serve: request %llu measured %llu cycles, "
                     "predicted %llu",
                     static_cast<unsigned long long>(r.id),
                     static_cast<unsigned long long>(rr.cycles),
                     static_cast<unsigned long long>(
                         r.predictedCycles));
                recheck = true;
            }
            if (r.retries > 0 || recheck) {
                // Each machine-checked attempt burned one service
                // time before the successful re-run.
                r.completionSec =
                    r.startSec +
                    static_cast<double>(r.retries) * service +
                    static_cast<double>(rr.cycles) * period;
                r.outcome = (job.req.deadlineSec > 0.0 &&
                             r.completionSec > job.req.deadlineSec)
                                ? Outcome::DeadlineMissed
                                : Outcome::Served;
            } else {
                r.outcome = Outcome::Served;
            }
        }
        finish(job, std::move(r));
    }
}

void
InferenceServer::finish(Job &job, Result r)
{
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        metrics_.record(r);
        --inflight_;
    }
    doneCv_.notify_all();
    job.promise.set_value(std::move(r));
}

void
InferenceServer::resume()
{
    {
        std::lock_guard<std::mutex> lock(pauseMu_);
        paused_ = false;
    }
    pauseCv_.notify_all();
}

void
InferenceServer::drain()
{
    std::unique_lock<std::mutex> lock(doneMu_);
    doneCv_.wait(lock, [&] { return inflight_ == 0; });
}

void
InferenceServer::shutdown()
{
    // Unpause before taking submitMu_: a submitter blocked in push()
    // holds that mutex and needs the workers running to make space.
    resume();
    {
        std::lock_guard<std::mutex> lock(submitMu_);
        if (shutdown_)
            return;
        shutdown_ = true;
    }
    drain();
    queue_.close();
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

ServerMetrics
InferenceServer::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(doneMu_);
    return metrics_;
}

std::string
InferenceServer::metricsJson() const
{
    const ServerMetrics snap = metricsSnapshot();
    JsonWriter j;
    j.beginObject();
    j.key("config")
        .beginObject()
        .kv("workers", cfg_.workers)
        .kv("queue_capacity",
            static_cast<std::uint64_t>(cfg_.queueCapacity))
        .kv("clock_hz", cfg_.chip.clockHz)
        .endObject();
    j.key("model")
        .beginObject()
        .kv("service_cycles",
            static_cast<std::uint64_t>(serviceCycles()))
        .kv("service_us", serviceSec() * 1e6)
        .endObject();
    j.key("metrics");
    snap.appendJson(j);
    j.endObject();
    return j.str();
}

Cycle
InferenceServer::totalChipCycles() const
{
    Cycle total = 0;
    for (const auto &b : backends_)
        total += b->totalCycles();
    return total;
}

} // namespace tsp::serve
