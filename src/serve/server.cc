#include "serve/server.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tsp::serve {

InferenceServer::InferenceServer(Lowering &lw, LoweredTensor input,
                                 LoweredTensor output,
                                 ServerConfig cfg)
    : InferenceServer(
          [&lw, &input, &output, &cfg](int) {
              return std::make_unique<SessionBackend>(
                  lw, input, output, cfg.chip);
          },
          lw.finishCycle(), cfg)
{
}

InferenceServer::InferenceServer(BatchProgramCache &cache,
                                 ServerConfig cfg)
    : InferenceServer(
          [&cache, &cfg](int) {
              return std::make_unique<SessionBackend>(cache,
                                                      cfg.chip);
          },
          1,
          ModelTiming{
              // Lazy pulls: a batch size the batcher never forms is
              // never compiled (the cache memoizes exact cycles).
              [&cache](int, int b) { return cache.cycles(b); },
              [&cache](int) { return cache.maxBatch(); },
              nullptr},
          nullptr, cfg)
{
}

InferenceServer::InferenceServer(const BackendFactory &factory,
                                 Cycle service_cycles,
                                 ServerConfig cfg)
    : InferenceServer(factory, std::vector<Cycle>{service_cycles},
                      cfg)
{
}

InferenceServer::InferenceServer(const BackendFactory &factory,
                                 std::vector<Cycle> cycles_by_batch,
                                 ServerConfig cfg)
    : InferenceServer(factory, 1,
                      ModelTiming::fromTable(
                          std::move(cycles_by_batch)),
                      nullptr, cfg)
{
}

namespace {

/** Multi-model servers with > 1 family require pinned dispatch: the
 * weight swap a booking paid for must happen on the worker it was
 * booked on, or the staged-model tracking is fiction. */
ServerConfig
forceMultiModel(ServerConfig cfg, int models)
{
    if (models > 1)
        cfg.pinnedDispatch = true;
    return cfg;
}

} // namespace

InferenceServer::InferenceServer(ModelRegistry &registry,
                                 ServerConfig cfg)
    : InferenceServer(
          [&registry, &cfg](int) {
              int cap = 1;
              for (int m = 0; m < registry.modelCount(); ++m)
                  cap = std::max(cap, registry.maxBatch(m));
              return std::make_unique<SessionBackend>(
                  registry.acquire(0, 1), cap, cfg.chip);
          },
          registry.modelCount(),
          ModelTiming{
              [&registry](int m, int b) {
                  return registry.cycles(m, b);
              },
              [&registry](int m) { return registry.maxBatch(m); },
              // The swap re-stages the family's weight/constant
              // image; batch sizes of one family share placements
              // (conv-placement cache), so batch-1's image is the
              // family's staging cost.
              [&registry](int m) { return registry.swapSec(m, 1); }},
          &registry, forceMultiModel(cfg, registry.modelCount()))
{
}

InferenceServer::InferenceServer(const BackendFactory &factory,
                                 ModelRegistry &registry,
                                 ServerConfig cfg)
    : InferenceServer(
          factory, registry.modelCount(),
          ModelTiming{
              [&registry](int m, int b) {
                  return registry.cycles(m, b);
              },
              [&registry](int m) { return registry.maxBatch(m); },
              [&registry](int m) { return registry.swapSec(m, 1); }},
          &registry, forceMultiModel(cfg, registry.modelCount()))
{
}

InferenceServer::InferenceServer(const BackendFactory &factory,
                                 int models, ModelTiming timing,
                                 ModelRegistry *registry,
                                 ServerConfig cfg)
    : cfg_(cfg), registry_(registry),
      admission_(cfg.workers, models, std::move(timing),
                 cfg.chip.cyclePeriodSec()),
      paused_(cfg.startPaused),
      metrics_(admission_.serviceSec(), cfg.workers,
               cfg.queueCapacity)
{
    TSP_ASSERT(cfg_.workers >= 1);
    classes_ = cfg_.sloClasses;
    if (classes_.empty())
        classes_.push_back(SloClass{});
    // One shared work-stealing queue, or one FIFO per worker under
    // pinned dispatch (each sealed batch goes to the worker its
    // booking assumed, so the engine that serves a request is a pure
    // function of the admission history).
    const int nq = cfg_.pinnedDispatch ? cfg_.workers : 1;
    queues_.reserve(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q)
        queues_.push_back(std::make_unique<BoundedQueue<BatchJob>>(
            cfg_.queueCapacity));
    backends_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
        backends_.push_back(factory(w));
    if (cfg_.traceCacheBytes > 0) {
        traceCache_ =
            std::make_shared<TraceCache>(cfg_.traceCacheBytes);
        for (const auto &b : backends_)
            b->attachTraceCache(traceCache_);
        // Eager trace hygiene: when the registry evicts a model's
        // program, its traces leave the shared budget immediately.
        if (registry_)
            registry_->attachTraceCache(traceCache_);
    }
    if (cfg_.migrateOnMachineCheck || cfg_.snapshotEveryCycles > 0) {
        // Default cadence: 8 snapshots per batch-1 service — cheap
        // (serialization is tiny next to simulation) yet fine-grained
        // enough that a migration re-executes at most ~1/8 of a run.
        Cycle every = cfg_.snapshotEveryCycles;
        if (every == 0)
            every = std::max<Cycle>(1, admission_.serviceCycles(1) / 8);
        for (const auto &b : backends_)
            b->enableSnapshots(every);
    }
    backendBatchCap_ = backends_[0]->maxBatch();
    for (const auto &b : backends_)
        backendBatchCap_ = std::min(backendBatchCap_, b->maxBatch());
    effBatchMax_ = effBatchMaxFor(0);
    expectedInput_ = backends_[0]->expectedInputBytes();
    threads_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Result>
InferenceServer::rejectNow(Request req, Outcome outcome,
                           const Admission &booking,
                           bool want_future)
{
    Result r;
    r.id = req.id;
    r.outcome = outcome;
    r.model = req.model;
    // An out-of-range model (RejectedInvalid) has no timing; report
    // the default family's like any other malformed request.
    const int m =
        req.model >= 0 && req.model < admission_.models()
            ? req.model
            : 0;
    r.predictedCycles = admission_.serviceCyclesFor(m, 1);
    r.arrivalSec = req.arrivalSec;
    r.startSec = booking.startSec;
    r.completionSec = booking.completionSec;
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        metrics_.record(r);
    }
    if (cfg_.onResult)
        cfg_.onResult(r);
    if (!want_future)
        return {};
    std::promise<Result> p;
    std::future<Result> f = p.get_future();
    p.set_value(std::move(r));
    return f;
}

void
InferenceServer::resolveMember(Member &m, Result r)
{
    if (cfg_.onResult)
        cfg_.onResult(r);
    if (m.promise)
        m.promise->set_value(std::move(r));
}

void
InferenceServer::sealOpenLocked()
{
    if (openMembers_.empty())
        return;
    BatchJob job;
    job.members = std::move(openMembers_);
    openMembers_.clear();
    job.booking = admission_.seal();
    job.model = openModel_;
    job.priority = openPriority_;
    // The registry handle rides with the job: LRU eviction may drop
    // the program from the registry while the batch is queued, but
    // the worker's copy stays pinned. acquire() runs here, on the
    // submit path, so the LRU/eviction sequence is a pure function
    // of the admission history.
    if (registry_)
        job.program =
            registry_->acquire(job.model, job.booking.batch);
    // push() may block (only workers free space) but never loses the
    // job: on failure — the queue was closed by shutdown() — the
    // members are resolved as recorded queue-full rejections, booking
    // fields intact, exactly like any other rejection.
    if (queueFor(job.booking.worker).push(std::move(job)))
        return;
    const Cycle predicted =
        admission_.serviceCyclesFor(openModel_, job.booking.batch);
    for (Member &m : job.members) {
        Result r;
        r.id = m.req.id;
        r.outcome = Outcome::RejectedQueueFull;
        r.model = m.req.model;
        r.preemptions = m.preemptions;
        r.batch = job.booking.batch;
        r.predictedCycles = predicted;
        r.arrivalSec = m.req.arrivalSec;
        r.startSec = job.booking.startSec;
        r.completionSec = job.booking.completionSec;
        {
            std::lock_guard<std::mutex> lock(doneMu_);
            metrics_.record(r);
        }
        resolveMember(m, std::move(r));
        {
            std::lock_guard<std::mutex> lock(doneMu_);
            --inflight_;
        }
        doneCv_.notify_all();
    }
}

std::future<Result>
InferenceServer::submit(std::vector<std::int8_t> input,
                        double arrival_sec, double deadline_sec,
                        OnFull on_full)
{
    return submitImpl(0, 0, std::move(input), arrival_sec,
                      deadline_sec, on_full, /*want_future=*/true);
}

std::future<Result>
InferenceServer::submitModel(int model, int slo_class,
                             std::vector<std::int8_t> input,
                             double arrival_sec, double deadline_sec,
                             OnFull on_full)
{
    return submitImpl(model, slo_class, std::move(input),
                      arrival_sec, deadline_sec, on_full,
                      /*want_future=*/true);
}

void
InferenceServer::submitDetached(std::vector<std::int8_t> input,
                                double arrival_sec,
                                double deadline_sec, OnFull on_full)
{
    submitImpl(0, 0, std::move(input), arrival_sec, deadline_sec,
               on_full, /*want_future=*/false);
}

void
InferenceServer::submitModelDetached(int model, int slo_class,
                                     std::vector<std::int8_t> input,
                                     double arrival_sec,
                                     double deadline_sec,
                                     OnFull on_full)
{
    submitImpl(model, slo_class, std::move(input), arrival_sec,
               deadline_sec, on_full, /*want_future=*/false);
}

int
InferenceServer::effBatchMaxFor(int model) const
{
    const int cap =
        std::min(admission_.maxBatchFor(model), backendBatchCap_);
    return std::max(1, std::min(cfg_.batchMax, cap));
}

std::future<Result>
InferenceServer::submitImpl(int model, int slo_class,
                            std::vector<std::int8_t> input,
                            double arrival_sec, double deadline_sec,
                            OnFull on_full, bool want_future)
{
    Request req;
    req.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    req.input = std::move(input);
    req.arrivalSec = arrival_sec;
    req.model = model;
    req.sloClass = slo_class;

    // An unknown model or tenant class is malformed, exactly like a
    // mis-sized input: refused before it can touch admission state.
    if (model < 0 || model >= admission_.models() || slo_class < 0 ||
        slo_class >= static_cast<int>(classes_.size())) {
        req.deadlineSec = deadline_sec;
        return rejectNow(std::move(req), Outcome::RejectedInvalid,
                         Admission{}, want_future);
    }

    // The tenant class scales the *slack*, not the absolute stamp;
    // everything downstream (join checks, retry budgets, preemption
    // probes) sees only the effective deadline.
    const SloClass &cls =
        classes_[static_cast<std::size_t>(slo_class)];
    if (deadline_sec > 0.0)
        deadline_sec = arrival_sec + (deadline_sec - arrival_sec) *
                                         cls.deadlineMultiplier;
    req.deadlineSec = deadline_sec;

    // Malformed input is refused before it can touch the admission
    // state or fault inside a worker thread.
    const std::size_t expect =
        registry_ ? registry_->expectedInputBytes(model)
                  : expectedInput_;
    if (expect != 0 && req.input.size() != expect)
        return rejectNow(std::move(req), Outcome::RejectedInvalid,
                         Admission{}, want_future);

    std::unique_lock<std::mutex> lock(submitMu_);
    if (shutdown_)
        return rejectNow(std::move(req), Outcome::RejectedQueueFull,
                         Admission{}, want_future);

    // Try to join the open batch first: a joined request consumes no
    // queue slot of its own and cannot be queue-full rejected.
    // Batches are single-family — a request for another model can
    // never join.
    if (!openMembers_.empty()) {
        Admission joined{};
        if (model == openModel_ &&
            arrival_sec <=
                openLeaderArrival_ + cfg_.batchWindowSec) {
            joined = admission_.tryJoin(arrival_sec, deadline_sec);
        }
        if (joined.admitted) {
            Member m;
            m.req = std::move(req);
            std::future<Result> f;
            if (want_future) {
                m.promise.emplace();
                f = m.promise->get_future();
            }
            {
                std::lock_guard<std::mutex> dl(doneMu_);
                ++inflight_;
            }
            openMembers_.push_back(std::move(m));
            openPriority_ = std::max(openPriority_, cls.priority);
            if (static_cast<int>(openMembers_.size()) >=
                effBatchMaxFor(model))
                sealOpenLocked();
            return f;
        }
        // Priority preemption: this arrival outranks the open batch,
        // cannot make its deadline behind it, but provably can in
        // its place. The open batch's booking is rolled back and its
        // members re-admitted right after (never dropped). Both
        // probes book nothing, so declining leaves no trace.
        if (cfg_.preemption && cls.priority > openPriority_ &&
            deadline_sec > 0.0 &&
            admission_.earliestCompletionFor(model, arrival_sec) >
                deadline_sec &&
            admission_.completionIfPreempted(arrival_sec, model) <=
                deadline_sec) {
            return preemptLocked(std::move(req), cls.priority,
                                 want_future);
        }
        // Window expired or the join was provably infeasible: this
        // request starts the next batch.
        sealOpenLocked();
    }

    // Backpressure check *before* booking so a full queue never
    // leaves a phantom reservation in the admission state. Only
    // submitters (serialized here) add to a queue, so a non-full
    // observation cannot be invalidated before our push. Under
    // pinned dispatch the relevant queue is the one this booking
    // would land on.
    if (on_full == OnFull::Reject &&
        queueFor(admission_.bestWorkerFor(model, arrival_sec))
            .full())
        return rejectNow(std::move(req), Outcome::RejectedQueueFull,
                         Admission{}, want_future);

    const Admission booking =
        admission_.open(arrival_sec, deadline_sec, model);
    if (!booking.admitted) {
        // A failed open() books nothing and leaves no open batch.
        return rejectNow(std::move(req), Outcome::RejectedDeadline,
                         booking, want_future);
    }

    Member m;
    m.req = std::move(req);
    std::future<Result> f;
    if (want_future) {
        m.promise.emplace();
        f = m.promise->get_future();
    }
    {
        std::lock_guard<std::mutex> dl(doneMu_);
        ++inflight_;
    }
    openMembers_.push_back(std::move(m));
    openLeaderArrival_ = arrival_sec;
    openModel_ = model;
    openPriority_ = cls.priority;
    if (effBatchMaxFor(model) <= 1)
        sealOpenLocked();
    return f;
}

std::future<Result>
InferenceServer::preemptLocked(Request req, int priority,
                               bool want_future)
{
    // Capture the victims and undo their booking completely; the
    // controller returns to its pre-open timeline.
    std::vector<Member> victims = std::move(openMembers_);
    openMembers_.clear();
    const int vmodel = openModel_;
    const int vprio = openPriority_;
    const int model = req.model;
    const double now = req.arrivalSec;
    admission_.rollbackOpen();

    // Book the preemptor; the feasibility probe already proved this
    // admits.
    const Admission booking =
        admission_.open(now, req.deadlineSec, model);
    TSP_ASSERT(booking.admitted);

    Member m;
    m.req = std::move(req);
    std::future<Result> f;
    if (want_future) {
        m.promise.emplace();
        f = m.promise->get_future();
    }
    {
        std::lock_guard<std::mutex> dl(doneMu_);
        ++inflight_;
    }
    openMembers_.push_back(std::move(m));
    openLeaderArrival_ = now;
    openModel_ = model;
    openPriority_ = priority;
    // Seal immediately: the victims must re-book *now* (only one
    // batch may be open, and deferring their fate to a later submit
    // would leave them booked nowhere).
    sealOpenLocked();

    // Re-admit the victims in their original admission order at the
    // preemption's virtual time. Feasible members re-batch; members
    // whose own deadline became infeasible are shed as recorded
    // RejectedDeadline — re-decided, never dropped.
    std::uint64_t requeued = 0, shed = 0;
    for (Member &v : victims) {
        v.preemptions += 1;
        requeueVictimLocked(std::move(v), vmodel, vprio, now,
                            requeued, shed);
    }
    {
        std::lock_guard<std::mutex> dl(doneMu_);
        metrics_.recordPreemption(requeued, shed);
    }
    return f;
}

void
InferenceServer::requeueVictimLocked(Member v, int vmodel, int vprio,
                                     double now_sec,
                                     std::uint64_t &requeued,
                                     std::uint64_t &shed)
{
    // Victims re-enter as a fresh batch of their family: the first
    // feasible one opens it, later ones try to join (they were
    // batchmates already — same family, adjacent deadlines), and a
    // join failure seals and re-opens, exactly like live arrivals.
    if (!openMembers_.empty()) {
        const Admission joined =
            admission_.tryJoin(now_sec, v.req.deadlineSec);
        if (joined.admitted) {
            openMembers_.push_back(std::move(v));
            ++requeued;
            if (static_cast<int>(openMembers_.size()) >=
                effBatchMaxFor(vmodel))
                sealOpenLocked();
            return;
        }
        sealOpenLocked();
    }
    const Admission booking =
        admission_.open(now_sec, v.req.deadlineSec, vmodel);
    if (!booking.admitted) {
        // Provably infeasible after the preemption: shed against its
        // original (effective) deadline, booking fields recorded.
        Result r;
        r.id = v.req.id;
        r.outcome = Outcome::RejectedDeadline;
        r.model = v.req.model;
        r.preemptions = v.preemptions;
        r.predictedCycles = admission_.serviceCyclesFor(vmodel, 1);
        r.arrivalSec = v.req.arrivalSec;
        r.startSec = booking.startSec;
        r.completionSec = booking.completionSec;
        {
            std::lock_guard<std::mutex> dl(doneMu_);
            metrics_.record(r);
        }
        resolveMember(v, std::move(r));
        {
            std::lock_guard<std::mutex> dl(doneMu_);
            --inflight_;
        }
        doneCv_.notify_all();
        ++shed;
        return;
    }
    openMembers_.push_back(std::move(v));
    openLeaderArrival_ = now_sec;
    openModel_ = vmodel;
    openPriority_ = vprio;
    ++requeued;
    if (effBatchMaxFor(vmodel) <= 1)
        sealOpenLocked();
}

void
InferenceServer::workerLoop(int w)
{
    Backend &be = *backends_[static_cast<std::size_t>(w)];
    const double period = cfg_.chip.cyclePeriodSec();
    BatchJob job;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(pauseMu_);
            pauseCv_.wait(lock, [&] { return !paused_; });
        }
        if (!queueFor(w).pop(job))
            return; // Closed and drained.

        // Multi-model: arm this family's compiled program before the
        // batch touches the engine. The shared_ptr was pinned at seal
        // time, so a registry eviction cannot free it mid-run.
        if (job.program)
            be.bindProgram(job.program);

        const int k = static_cast<int>(job.members.size());
        const Cycle predicted =
            admission_.serviceCyclesFor(job.model, k);
        const double service =
            admission_.serviceSecFor(job.model, k);

        // The whole batch retries or fails together; a retry is
        // taken only while the *tightest* member deadline still
        // admits another full batch service time.
        double min_deadline = 0.0;
        for (const Member &m : job.members) {
            if (m.req.deadlineSec <= 0.0)
                continue;
            min_deadline = min_deadline <= 0.0
                               ? m.req.deadlineSec
                               : std::min(min_deadline,
                                          m.req.deadlineSec);
        }

        // Engine rebuilds are not free: each retry (and each
        // migration resume) first re-stages the engine image over
        // the host link. Booking retries against service time alone
        // under-estimates the completion and admits retries that
        // cannot make their deadline.
        const double rebuild = be.rebuildPenaltySec();

        std::uint32_t retries = 0;
        int migrations = 0;
        std::uint64_t machine_checks = 0;
        std::uint64_t corrected = 0;
        double migratedSec = 0.0; // Burned by pre-migration segments.
        RunResult rr;
        for (;;) {
            // resetBatch() rebuilds a condemned (or timed-out)
            // engine, with a derived fault seed so a retry does not
            // replay the identical environmental upset, and arms the
            // compiled batch-k program.
            be.resetBatch(k);
            for (int s = 0; s < k; ++s)
                be.writeSample(
                    s,
                    job.members[static_cast<std::size_t>(s)]
                        .req.input);
            const std::uint64_t cor0 = be.correctedErrors();
            rr = be.runBounded(cfg_.maxCyclesPerRun);
            corrected += be.correctedErrors() - cor0;
            // Mid-batch migration: restore the last pre-fault
            // snapshot onto a rebuilt engine and resume, instead of
            // burning a full retry. Only when a clean snapshot
            // precedes the first uncorrectable error; otherwise fall
            // through to the full-retry policy.
            while (rr.status == RunStatus::MachineCheck &&
                   cfg_.migrateOnMachineCheck && be.canMigrate() &&
                   migrations < cfg_.maxMigrations) {
                machine_checks += be.machineCheckCount();
                migratedSec +=
                    static_cast<double>(rr.cycles) * period + rebuild;
                ++migrations;
                const std::uint64_t mcor0 = be.correctedErrors();
                rr = be.migrateAndResume(cfg_.maxCyclesPerRun);
                const std::uint64_t mcor1 = be.correctedErrors();
                // The restored engine's counter rewinds to the
                // snapshot-time value; only count forward progress.
                if (mcor1 > mcor0)
                    corrected += mcor1 - mcor0;
            }
            if (rr.status != RunStatus::MachineCheck)
                break;
            machine_checks += be.machineCheckCount();
            const double retry_completion =
                job.booking.startSec + migratedSec +
                static_cast<double>(retries + 2) * service +
                static_cast<double>(retries + 1) * rebuild;
            if (static_cast<int>(retries) >= cfg_.maxRetries ||
                (min_deadline > 0.0 &&
                 retry_completion > min_deadline)) {
                break;
            }
            ++retries;
        }

        std::vector<Result> results(
            static_cast<std::size_t>(k));
        for (int s = 0; s < k; ++s) {
            const Member &m =
                job.members[static_cast<std::size_t>(s)];
            Result &r = results[static_cast<std::size_t>(s)];
            r.id = m.req.id;
            r.model = job.model;
            r.preemptions = m.preemptions;
            r.batch = k;
            r.predictedCycles = predicted;
            r.measuredCycles = rr.cycles;
            r.retries = retries;
            r.migrations = static_cast<std::uint32_t>(migrations);
            r.machineChecks = machine_checks;
            r.correctedErrors = corrected;
            r.arrivalSec = m.req.arrivalSec;
            r.startSec = job.booking.startSec;
            r.completionSec = job.booking.completionSec;
        }

        if (rr.status == RunStatus::MachineCheck) {
            // Every permitted attempt machine-checked. No output is
            // ever read from a condemned engine — a corrupted batch
            // cannot reach clients as a partial success.
            for (Result &r : results)
                r.outcome = Outcome::FailedMachineCheck;
        } else if (!rr.completed) {
            // Timeout propagates as an explicit failure; the backend
            // rebuilds its engine on the next reset.
            for (Result &r : results)
                r.outcome = Outcome::Failed;
        } else {
            bool recheck = false;
            // After a migration rr.cycles spans only the resumed
            // segment, so a mismatch with the whole-run prediction is
            // expected — the migration accounting below already
            // re-derives the completion from measured time.
            if (rr.cycles != predicted && migrations == 0) {
                // Defensive path — determinism says this is dead
                // code; if it ever fires, re-derive the completion
                // from the measured cycles and re-check deadlines.
                warn("serve: batch of %d measured %llu cycles, "
                     "predicted %llu",
                     k, static_cast<unsigned long long>(rr.cycles),
                     static_cast<unsigned long long>(predicted));
                recheck = true;
            }
            for (int s = 0; s < k; ++s) {
                const Member &m =
                    job.members[static_cast<std::size_t>(s)];
                Result &r = results[static_cast<std::size_t>(s)];
                r.output = be.readSample(s);
                if (retries > 0 || migrations > 0 || recheck) {
                    // Each machine-checked attempt burned one batch
                    // service time plus an engine rebuild, and each
                    // migration burned its failed segment plus a
                    // rebuild, before the successful (re)run.
                    r.completionSec =
                        r.startSec +
                        static_cast<double>(retries) *
                            (service + rebuild) +
                        migratedSec +
                        static_cast<double>(rr.cycles) * period;
                    r.outcome =
                        (m.req.deadlineSec > 0.0 &&
                         r.completionSec > m.req.deadlineSec)
                            ? Outcome::DeadlineMissed
                            : Outcome::Served;
                } else {
                    r.outcome = Outcome::Served;
                }
            }
        }
        finishBatch(job, std::move(results));
    }
}

void
InferenceServer::finishBatch(BatchJob &job,
                             std::vector<Result> results)
{
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        metrics_.recordBatch(results);
    }
    // Resolve (promises + onResult) *before* releasing the drain
    // gate: once inflight_ hits zero, drain() may return and the
    // caller may read aggregated state — every result must already
    // be delivered by then.
    const std::size_t n = results.size();
    for (std::size_t i = 0; i < n; ++i)
        resolveMember(job.members[i], std::move(results[i]));
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        inflight_ -= n;
    }
    doneCv_.notify_all();
}

void
InferenceServer::resume()
{
    {
        std::lock_guard<std::mutex> lock(pauseMu_);
        paused_ = false;
    }
    pauseCv_.notify_all();
}

void
InferenceServer::flushOpenBatch()
{
    std::lock_guard<std::mutex> lock(submitMu_);
    sealOpenLocked();
}

std::size_t
InferenceServer::queueDepth() const
{
    std::size_t depth = 0;
    for (const auto &q : queues_)
        depth += q->size();
    return depth;
}

void
InferenceServer::drain()
{
    {
        std::lock_guard<std::mutex> lock(submitMu_);
        sealOpenLocked();
    }
    std::unique_lock<std::mutex> lock(doneMu_);
    doneCv_.wait(lock, [&] { return inflight_ == 0; });
}

void
InferenceServer::shutdown()
{
    // Close the queues *first*: a submitter blocked in push() (full
    // queue, OnFull::Block) must wake and resolve its members as
    // recorded rejections — shutdown cannot wait for space that may
    // never free. Everything below is idempotent.
    for (auto &q : queues_)
        q->close();
    // Unpause before taking submitMu_: a submitter blocked in push()
    // holds that mutex; close() has already woken it.
    resume();
    {
        std::lock_guard<std::mutex> lock(submitMu_);
        shutdown_ = true;
        // Flush the open batch; with the queue closed its members
        // resolve as recorded rejections.
        sealOpenLocked();
    }
    drain();
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

ServerMetrics
InferenceServer::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(doneMu_);
    return metrics_;
}

std::string
InferenceServer::metricsJson() const
{
    const ServerMetrics snap = metricsSnapshot();
    JsonWriter j;
    j.beginObject();
    j.key("config")
        .beginObject()
        .kv("workers", cfg_.workers)
        .kv("queue_capacity",
            static_cast<std::uint64_t>(cfg_.queueCapacity))
        .kv("clock_hz", cfg_.chip.clockHz)
        .kv("batch_max", effBatchMax_)
        .kv("batch_window_us", cfg_.batchWindowSec * 1e6)
        .kv("trace_cache_budget_bytes",
            static_cast<std::uint64_t>(cfg_.traceCacheBytes))
        .endObject();
    j.key("trace_cache")
        .beginObject()
        .kv("entries", static_cast<std::uint64_t>(traceCacheSize()))
        .kv("bytes", static_cast<std::uint64_t>(traceCacheBytes()))
        .kv("replays", replayCount())
        .kv("records", recordCount())
        .endObject();
    j.key("model").beginObject();
    j.kv("service_cycles",
         static_cast<std::uint64_t>(serviceCycles()));
    j.kv("service_us", serviceSec() * 1e6);
    j.key("service_cycles_by_batch").beginArray();
    for (int b = 1; b <= admission_.maxBatch(); ++b)
        j.value(static_cast<std::uint64_t>(
            admission_.serviceCycles(b)));
    j.endArray();
    j.endObject();
    if (registry_) {
        // Side-effect-free accessors only: reporting must never
        // compile a program or disturb the LRU order.
        j.key("registry")
            .beginObject()
            .kv("budget_bytes", registry_->budgetBytes())
            .kv("resident_bytes", registry_->residentBytes())
            .kv("compiles", registry_->compileCount())
            .kv("evictions", registry_->evictions())
            .endObject();
        j.key("models").beginArray();
        for (int m = 0; m < registry_->modelCount(); ++m) {
            j.beginObject()
                .kv("name", registry_->name(m))
                .kv("max_batch", registry_->maxBatch(m));
            j.key("compiled_sizes").beginArray();
            for (int b = 1; b <= registry_->maxBatch(m); ++b) {
                if (registry_->compiled(m, b))
                    j.value(static_cast<std::uint64_t>(b));
            }
            j.endArray();
            j.kv("resident_bytes",
                 registry_->cache(m).residentBytes());
            j.endObject();
        }
        j.endArray();
    }
    j.key("metrics");
    snap.appendJson(j);
    j.endObject();
    return j.str();
}

Cycle
InferenceServer::totalChipCycles() const
{
    Cycle total = 0;
    for (const auto &b : backends_)
        total += b->totalCycles();
    return total;
}

std::uint64_t
InferenceServer::replayCount() const
{
    std::uint64_t n = 0;
    for (const auto &b : backends_)
        n += b->replayCount();
    return n;
}

std::uint64_t
InferenceServer::recordCount() const
{
    std::uint64_t n = 0;
    for (const auto &b : backends_)
        n += b->recordCount();
    return n;
}

} // namespace tsp::serve
