#include "serve/server.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tsp::serve {

InferenceServer::InferenceServer(Lowering &lw, LoweredTensor input,
                                 LoweredTensor output,
                                 ServerConfig cfg)
    : InferenceServer(
          [&lw, &input, &output, &cfg](int) {
              return std::make_unique<SessionBackend>(
                  lw, input, output, cfg.chip);
          },
          lw.finishCycle(), cfg)
{
}

InferenceServer::InferenceServer(BatchProgramCache &cache,
                                 ServerConfig cfg)
    : InferenceServer(
          [&cache, &cfg](int) {
              return std::make_unique<SessionBackend>(cache,
                                                      cfg.chip);
          },
          cache.cyclesByBatch(), cfg)
{
}

InferenceServer::InferenceServer(const BackendFactory &factory,
                                 Cycle service_cycles,
                                 ServerConfig cfg)
    : InferenceServer(factory, std::vector<Cycle>{service_cycles},
                      cfg)
{
}

InferenceServer::InferenceServer(const BackendFactory &factory,
                                 std::vector<Cycle> cycles_by_batch,
                                 ServerConfig cfg)
    : cfg_(cfg),
      admission_(cfg.workers, std::move(cycles_by_batch),
                 cfg.chip.cyclePeriodSec()),
      paused_(cfg.startPaused),
      metrics_(admission_.serviceSec(), cfg.workers,
               cfg.queueCapacity)
{
    TSP_ASSERT(cfg_.workers >= 1);
    // One shared work-stealing queue, or one FIFO per worker under
    // pinned dispatch (each sealed batch goes to the worker its
    // booking assumed, so the engine that serves a request is a pure
    // function of the admission history).
    const int nq = cfg_.pinnedDispatch ? cfg_.workers : 1;
    queues_.reserve(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q)
        queues_.push_back(std::make_unique<BoundedQueue<BatchJob>>(
            cfg_.queueCapacity));
    backends_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
        backends_.push_back(factory(w));
    if (cfg_.traceCacheBytes > 0) {
        traceCache_ =
            std::make_shared<TraceCache>(cfg_.traceCacheBytes);
        for (const auto &b : backends_)
            b->attachTraceCache(traceCache_);
    }
    if (cfg_.migrateOnMachineCheck || cfg_.snapshotEveryCycles > 0) {
        // Default cadence: 8 snapshots per batch-1 service — cheap
        // (serialization is tiny next to simulation) yet fine-grained
        // enough that a migration re-executes at most ~1/8 of a run.
        Cycle every = cfg_.snapshotEveryCycles;
        if (every == 0)
            every = std::max<Cycle>(1, admission_.serviceCycles(1) / 8);
        for (const auto &b : backends_)
            b->enableSnapshots(every);
    }
    effBatchMax_ =
        std::max(1, std::min(cfg_.batchMax, admission_.maxBatch()));
    for (const auto &b : backends_)
        effBatchMax_ = std::min(effBatchMax_, b->maxBatch());
    expectedInput_ = backends_[0]->expectedInputBytes();
    threads_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Result>
InferenceServer::rejectNow(Request req, Outcome outcome,
                           const Admission &booking,
                           bool want_future)
{
    Result r;
    r.id = req.id;
    r.outcome = outcome;
    r.predictedCycles = admission_.serviceCycles();
    r.arrivalSec = req.arrivalSec;
    r.startSec = booking.startSec;
    r.completionSec = booking.completionSec;
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        metrics_.record(r);
    }
    if (cfg_.onResult)
        cfg_.onResult(r);
    if (!want_future)
        return {};
    std::promise<Result> p;
    std::future<Result> f = p.get_future();
    p.set_value(std::move(r));
    return f;
}

void
InferenceServer::resolveMember(Member &m, Result r)
{
    if (cfg_.onResult)
        cfg_.onResult(r);
    if (m.promise)
        m.promise->set_value(std::move(r));
}

void
InferenceServer::sealOpenLocked()
{
    if (openMembers_.empty())
        return;
    BatchJob job;
    job.members = std::move(openMembers_);
    openMembers_.clear();
    job.booking = admission_.seal();
    // push() may block (only workers free space) but never loses the
    // job: on failure — the queue was closed by shutdown() — the
    // members are resolved as recorded queue-full rejections, booking
    // fields intact, exactly like any other rejection.
    if (queueFor(job.booking.worker).push(std::move(job)))
        return;
    const Cycle predicted =
        admission_.serviceCycles(job.booking.batch);
    for (Member &m : job.members) {
        Result r;
        r.id = m.req.id;
        r.outcome = Outcome::RejectedQueueFull;
        r.batch = job.booking.batch;
        r.predictedCycles = predicted;
        r.arrivalSec = m.req.arrivalSec;
        r.startSec = job.booking.startSec;
        r.completionSec = job.booking.completionSec;
        {
            std::lock_guard<std::mutex> lock(doneMu_);
            metrics_.record(r);
        }
        resolveMember(m, std::move(r));
        {
            std::lock_guard<std::mutex> lock(doneMu_);
            --inflight_;
        }
        doneCv_.notify_all();
    }
}

std::future<Result>
InferenceServer::submit(std::vector<std::int8_t> input,
                        double arrival_sec, double deadline_sec,
                        OnFull on_full)
{
    return submitImpl(std::move(input), arrival_sec, deadline_sec,
                      on_full, /*want_future=*/true);
}

void
InferenceServer::submitDetached(std::vector<std::int8_t> input,
                                double arrival_sec,
                                double deadline_sec, OnFull on_full)
{
    submitImpl(std::move(input), arrival_sec, deadline_sec, on_full,
               /*want_future=*/false);
}

std::future<Result>
InferenceServer::submitImpl(std::vector<std::int8_t> input,
                            double arrival_sec, double deadline_sec,
                            OnFull on_full, bool want_future)
{
    Request req;
    req.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    req.input = std::move(input);
    req.arrivalSec = arrival_sec;
    req.deadlineSec = deadline_sec;

    // Malformed input is refused before it can touch the admission
    // state or fault inside a worker thread.
    if (expectedInput_ != 0 && req.input.size() != expectedInput_)
        return rejectNow(std::move(req), Outcome::RejectedInvalid,
                         Admission{}, want_future);

    std::unique_lock<std::mutex> lock(submitMu_);
    if (shutdown_)
        return rejectNow(std::move(req), Outcome::RejectedQueueFull,
                         Admission{}, want_future);

    // Try to join the open batch first: a joined request consumes no
    // queue slot of its own and cannot be queue-full rejected.
    if (!openMembers_.empty()) {
        Admission joined{};
        if (arrival_sec <=
            openLeaderArrival_ + cfg_.batchWindowSec) {
            joined = admission_.tryJoin(arrival_sec, deadline_sec);
        }
        if (joined.admitted) {
            Member m;
            m.req = std::move(req);
            std::future<Result> f;
            if (want_future) {
                m.promise.emplace();
                f = m.promise->get_future();
            }
            {
                std::lock_guard<std::mutex> dl(doneMu_);
                ++inflight_;
            }
            openMembers_.push_back(std::move(m));
            if (static_cast<int>(openMembers_.size()) >=
                effBatchMax_)
                sealOpenLocked();
            return f;
        }
        // Window expired or the join was provably infeasible: this
        // request starts the next batch.
        sealOpenLocked();
    }

    // Backpressure check *before* booking so a full queue never
    // leaves a phantom reservation in the admission state. Only
    // submitters (serialized here) add to a queue, so a non-full
    // observation cannot be invalidated before our push. Under
    // pinned dispatch the relevant queue is the one this booking
    // would land on: the earliest-free worker's.
    if (on_full == OnFull::Reject &&
        queueFor(admission_.earliestWorker()).full())
        return rejectNow(std::move(req), Outcome::RejectedQueueFull,
                         Admission{}, want_future);

    const Admission booking =
        admission_.open(arrival_sec, deadline_sec);
    if (!booking.admitted) {
        // A failed open() books nothing and leaves no open batch.
        return rejectNow(std::move(req), Outcome::RejectedDeadline,
                         booking, want_future);
    }

    Member m;
    m.req = std::move(req);
    std::future<Result> f;
    if (want_future) {
        m.promise.emplace();
        f = m.promise->get_future();
    }
    {
        std::lock_guard<std::mutex> dl(doneMu_);
        ++inflight_;
    }
    openMembers_.push_back(std::move(m));
    openLeaderArrival_ = arrival_sec;
    if (effBatchMax_ <= 1)
        sealOpenLocked();
    return f;
}

void
InferenceServer::workerLoop(int w)
{
    Backend &be = *backends_[static_cast<std::size_t>(w)];
    const double period = cfg_.chip.cyclePeriodSec();
    BatchJob job;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(pauseMu_);
            pauseCv_.wait(lock, [&] { return !paused_; });
        }
        if (!queueFor(w).pop(job))
            return; // Closed and drained.

        const int k = static_cast<int>(job.members.size());
        const Cycle predicted = admission_.serviceCycles(k);
        const double service = admission_.serviceSec(k);

        // The whole batch retries or fails together; a retry is
        // taken only while the *tightest* member deadline still
        // admits another full batch service time.
        double min_deadline = 0.0;
        for (const Member &m : job.members) {
            if (m.req.deadlineSec <= 0.0)
                continue;
            min_deadline = min_deadline <= 0.0
                               ? m.req.deadlineSec
                               : std::min(min_deadline,
                                          m.req.deadlineSec);
        }

        // Engine rebuilds are not free: each retry (and each
        // migration resume) first re-stages the engine image over
        // the host link. Booking retries against service time alone
        // under-estimates the completion and admits retries that
        // cannot make their deadline.
        const double rebuild = be.rebuildPenaltySec();

        std::uint32_t retries = 0;
        int migrations = 0;
        std::uint64_t machine_checks = 0;
        std::uint64_t corrected = 0;
        double migratedSec = 0.0; // Burned by pre-migration segments.
        RunResult rr;
        for (;;) {
            // resetBatch() rebuilds a condemned (or timed-out)
            // engine, with a derived fault seed so a retry does not
            // replay the identical environmental upset, and arms the
            // compiled batch-k program.
            be.resetBatch(k);
            for (int s = 0; s < k; ++s)
                be.writeSample(
                    s,
                    job.members[static_cast<std::size_t>(s)]
                        .req.input);
            const std::uint64_t cor0 = be.correctedErrors();
            rr = be.runBounded(cfg_.maxCyclesPerRun);
            corrected += be.correctedErrors() - cor0;
            // Mid-batch migration: restore the last pre-fault
            // snapshot onto a rebuilt engine and resume, instead of
            // burning a full retry. Only when a clean snapshot
            // precedes the first uncorrectable error; otherwise fall
            // through to the full-retry policy.
            while (rr.status == RunStatus::MachineCheck &&
                   cfg_.migrateOnMachineCheck && be.canMigrate() &&
                   migrations < cfg_.maxMigrations) {
                machine_checks += be.machineCheckCount();
                migratedSec +=
                    static_cast<double>(rr.cycles) * period + rebuild;
                ++migrations;
                const std::uint64_t mcor0 = be.correctedErrors();
                rr = be.migrateAndResume(cfg_.maxCyclesPerRun);
                const std::uint64_t mcor1 = be.correctedErrors();
                // The restored engine's counter rewinds to the
                // snapshot-time value; only count forward progress.
                if (mcor1 > mcor0)
                    corrected += mcor1 - mcor0;
            }
            if (rr.status != RunStatus::MachineCheck)
                break;
            machine_checks += be.machineCheckCount();
            const double retry_completion =
                job.booking.startSec + migratedSec +
                static_cast<double>(retries + 2) * service +
                static_cast<double>(retries + 1) * rebuild;
            if (static_cast<int>(retries) >= cfg_.maxRetries ||
                (min_deadline > 0.0 &&
                 retry_completion > min_deadline)) {
                break;
            }
            ++retries;
        }

        std::vector<Result> results(
            static_cast<std::size_t>(k));
        for (int s = 0; s < k; ++s) {
            const Member &m =
                job.members[static_cast<std::size_t>(s)];
            Result &r = results[static_cast<std::size_t>(s)];
            r.id = m.req.id;
            r.batch = k;
            r.predictedCycles = predicted;
            r.measuredCycles = rr.cycles;
            r.retries = retries;
            r.migrations = static_cast<std::uint32_t>(migrations);
            r.machineChecks = machine_checks;
            r.correctedErrors = corrected;
            r.arrivalSec = m.req.arrivalSec;
            r.startSec = job.booking.startSec;
            r.completionSec = job.booking.completionSec;
        }

        if (rr.status == RunStatus::MachineCheck) {
            // Every permitted attempt machine-checked. No output is
            // ever read from a condemned engine — a corrupted batch
            // cannot reach clients as a partial success.
            for (Result &r : results)
                r.outcome = Outcome::FailedMachineCheck;
        } else if (!rr.completed) {
            // Timeout propagates as an explicit failure; the backend
            // rebuilds its engine on the next reset.
            for (Result &r : results)
                r.outcome = Outcome::Failed;
        } else {
            bool recheck = false;
            // After a migration rr.cycles spans only the resumed
            // segment, so a mismatch with the whole-run prediction is
            // expected — the migration accounting below already
            // re-derives the completion from measured time.
            if (rr.cycles != predicted && migrations == 0) {
                // Defensive path — determinism says this is dead
                // code; if it ever fires, re-derive the completion
                // from the measured cycles and re-check deadlines.
                warn("serve: batch of %d measured %llu cycles, "
                     "predicted %llu",
                     k, static_cast<unsigned long long>(rr.cycles),
                     static_cast<unsigned long long>(predicted));
                recheck = true;
            }
            for (int s = 0; s < k; ++s) {
                const Member &m =
                    job.members[static_cast<std::size_t>(s)];
                Result &r = results[static_cast<std::size_t>(s)];
                r.output = be.readSample(s);
                if (retries > 0 || migrations > 0 || recheck) {
                    // Each machine-checked attempt burned one batch
                    // service time plus an engine rebuild, and each
                    // migration burned its failed segment plus a
                    // rebuild, before the successful (re)run.
                    r.completionSec =
                        r.startSec +
                        static_cast<double>(retries) *
                            (service + rebuild) +
                        migratedSec +
                        static_cast<double>(rr.cycles) * period;
                    r.outcome =
                        (m.req.deadlineSec > 0.0 &&
                         r.completionSec > m.req.deadlineSec)
                            ? Outcome::DeadlineMissed
                            : Outcome::Served;
                } else {
                    r.outcome = Outcome::Served;
                }
            }
        }
        finishBatch(job, std::move(results));
    }
}

void
InferenceServer::finishBatch(BatchJob &job,
                             std::vector<Result> results)
{
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        metrics_.recordBatch(results);
    }
    // Resolve (promises + onResult) *before* releasing the drain
    // gate: once inflight_ hits zero, drain() may return and the
    // caller may read aggregated state — every result must already
    // be delivered by then.
    const std::size_t n = results.size();
    for (std::size_t i = 0; i < n; ++i)
        resolveMember(job.members[i], std::move(results[i]));
    {
        std::lock_guard<std::mutex> lock(doneMu_);
        inflight_ -= n;
    }
    doneCv_.notify_all();
}

void
InferenceServer::resume()
{
    {
        std::lock_guard<std::mutex> lock(pauseMu_);
        paused_ = false;
    }
    pauseCv_.notify_all();
}

void
InferenceServer::flushOpenBatch()
{
    std::lock_guard<std::mutex> lock(submitMu_);
    sealOpenLocked();
}

std::size_t
InferenceServer::queueDepth() const
{
    std::size_t depth = 0;
    for (const auto &q : queues_)
        depth += q->size();
    return depth;
}

void
InferenceServer::drain()
{
    {
        std::lock_guard<std::mutex> lock(submitMu_);
        sealOpenLocked();
    }
    std::unique_lock<std::mutex> lock(doneMu_);
    doneCv_.wait(lock, [&] { return inflight_ == 0; });
}

void
InferenceServer::shutdown()
{
    // Close the queues *first*: a submitter blocked in push() (full
    // queue, OnFull::Block) must wake and resolve its members as
    // recorded rejections — shutdown cannot wait for space that may
    // never free. Everything below is idempotent.
    for (auto &q : queues_)
        q->close();
    // Unpause before taking submitMu_: a submitter blocked in push()
    // holds that mutex; close() has already woken it.
    resume();
    {
        std::lock_guard<std::mutex> lock(submitMu_);
        shutdown_ = true;
        // Flush the open batch; with the queue closed its members
        // resolve as recorded rejections.
        sealOpenLocked();
    }
    drain();
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

ServerMetrics
InferenceServer::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(doneMu_);
    return metrics_;
}

std::string
InferenceServer::metricsJson() const
{
    const ServerMetrics snap = metricsSnapshot();
    JsonWriter j;
    j.beginObject();
    j.key("config")
        .beginObject()
        .kv("workers", cfg_.workers)
        .kv("queue_capacity",
            static_cast<std::uint64_t>(cfg_.queueCapacity))
        .kv("clock_hz", cfg_.chip.clockHz)
        .kv("batch_max", effBatchMax_)
        .kv("batch_window_us", cfg_.batchWindowSec * 1e6)
        .kv("trace_cache_budget_bytes",
            static_cast<std::uint64_t>(cfg_.traceCacheBytes))
        .endObject();
    j.key("trace_cache")
        .beginObject()
        .kv("entries", static_cast<std::uint64_t>(traceCacheSize()))
        .kv("bytes", static_cast<std::uint64_t>(traceCacheBytes()))
        .kv("replays", replayCount())
        .kv("records", recordCount())
        .endObject();
    j.key("model").beginObject();
    j.kv("service_cycles",
         static_cast<std::uint64_t>(serviceCycles()));
    j.kv("service_us", serviceSec() * 1e6);
    j.key("service_cycles_by_batch").beginArray();
    for (int b = 1; b <= admission_.maxBatch(); ++b)
        j.value(static_cast<std::uint64_t>(
            admission_.serviceCycles(b)));
    j.endArray();
    j.endObject();
    j.key("metrics");
    snap.appendJson(j);
    j.endObject();
    return j.str();
}

Cycle
InferenceServer::totalChipCycles() const
{
    Cycle total = 0;
    for (const auto &b : backends_)
        total += b->totalCycles();
    return total;
}

std::uint64_t
InferenceServer::replayCount() const
{
    std::uint64_t n = 0;
    for (const auto &b : backends_)
        n += b->replayCount();
    return n;
}

std::uint64_t
InferenceServer::recordCount() const
{
    std::uint64_t n = 0;
    for (const auto &b : backends_)
        n += b->recordCount();
    return n;
}

} // namespace tsp::serve
