#include "serve/metrics.hh"

#include <algorithm>
#include <cmath>

namespace tsp::serve {
namespace {

/** Histogram upper bound: worst feasible latency, with headroom. */
double
latencyBoundUs(double service_sec, int workers,
               std::size_t queue_capacity)
{
    const double waits =
        std::ceil(static_cast<double>(queue_capacity) /
                  std::max(workers, 1));
    return (waits + 2.0) * service_sec * 1e6;
}

void
appendHistogramJson(JsonWriter &j, const Histogram &h)
{
    j.beginObject();
    j.kv("count", h.count());
    j.kv("mean", h.count() ? h.mean() : 0.0);
    j.kv("min", h.count() ? h.minSample() : 0.0);
    j.kv("max", h.count() ? h.maxSample() : 0.0);
    j.kv("p50", h.count() ? h.quantile(0.50) : 0.0);
    j.kv("p95", h.count() ? h.quantile(0.95) : 0.0);
    j.kv("p99", h.count() ? h.quantile(0.99) : 0.0);
    // Nonzero means the bucket range was exceeded and upper
    // quantiles saturate at max rather than resolving in-range.
    j.kv("underflow", h.underflow());
    j.kv("overflow", h.overflow());
    j.endObject();
}

} // namespace

ServerMetrics::ServerMetrics(double service_sec, int workers,
                             std::size_t queue_capacity)
    : queueUs_(0.0, latencyBoundUs(service_sec, workers, queue_capacity),
               512),
      totalUs_(0.0, latencyBoundUs(service_sec, workers, queue_capacity),
               512)
{
    // Seed every counter the schema promises at zero: a report
    // consumer must be able to distinguish "zero machine checks"
    // from "field not emitted by this build" without guessing
    // (schema_version pins the promise).
    for (const Outcome o :
         {Outcome::Served, Outcome::RejectedDeadline,
          Outcome::RejectedQueueFull, Outcome::RejectedInvalid,
          Outcome::DeadlineMissed, Outcome::Failed,
          Outcome::FailedMachineCheck})
        counters_.add(outcomeName(o), 0);
    for (const char *name :
         {"submitted", "batches", "batch_samples", "machine_checks",
          "retries", "migrations", "ecc_corrected", "preemptions",
          "preempted_requeued", "preempted_shed"})
        counters_.add(name, 0);
}

void
ServerMetrics::recordPreemption(std::uint64_t requeued,
                                std::uint64_t shed)
{
    counters_.add("preemptions");
    counters_.add("preempted_requeued", requeued);
    counters_.add("preempted_shed", shed);
}

void
ServerMetrics::record(const Result &r)
{
    recordOne(r, /*count_reliability=*/true);
}

void
ServerMetrics::recordBatch(const std::vector<Result> &results)
{
    counters_.add("batches");
    counters_.add("batch_samples", results.size());
    bool reliability = true;
    for (const Result &r : results) {
        recordOne(r, reliability);
        // The members shared one physical run; count its machine
        // checks / retries / corrections once, not once per member.
        reliability = false;
    }
}

void
ServerMetrics::recordOne(const Result &r, bool count_reliability)
{
    counters_.add("submitted");
    counters_.add(outcomeName(r.outcome));
    // Reliability counters exist (as zero) even on clean runs so the
    // JSON schema is stable across fault configs.
    counters_.add("machine_checks",
                  count_reliability ? r.machineChecks : 0);
    counters_.add("retries", count_reliability ? r.retries : 0);
    counters_.add("migrations",
                  count_reliability ? r.migrations : 0);
    counters_.add("ecc_corrected",
                  count_reliability ? r.correctedErrors : 0);
    if (r.outcome == Outcome::Served ||
        r.outcome == Outcome::DeadlineMissed) {
        queueUs_.record(r.queueSec() * 1e6);
        totalUs_.record(r.latencySec() * 1e6);
        // The mismatch counter is a determinism tripwire for
        // uninterrupted runs. After a migration the measured count
        // spans only the resumed segment, so a difference from the
        // whole-run prediction is expected, not a simulator bug.
        if (r.measuredCycles != r.predictedCycles &&
            r.migrations == 0)
            ++mismatches_;
        if (!any_ || r.arrivalSec < firstArrival_)
            firstArrival_ = r.arrivalSec;
        if (!any_ || r.completionSec > lastCompletion_)
            lastCompletion_ = r.completionSec;
        any_ = true;
        if (r.outcome == Outcome::Served) {
            if (!anyServed_ || r.arrivalSec < servedFirstArrival_)
                servedFirstArrival_ = r.arrivalSec;
            if (!anyServed_ ||
                r.completionSec > servedLastCompletion_)
                servedLastCompletion_ = r.completionSec;
            anyServed_ = true;
        }
    }
}

double
ServerMetrics::makespanSec() const
{
    return any_ ? lastCompletion_ - firstArrival_ : 0.0;
}

double
ServerMetrics::throughputRps() const
{
    // Served-only window: a trailing DeadlineMissed completion must
    // not dilute (or inflate) the rate of requests that counted.
    if (!anyServed_)
        return 0.0;
    const double span =
        servedLastCompletion_ - servedFirstArrival_;
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(counters_.get("served")) / span;
}

void
ServerMetrics::appendJson(JsonWriter &j) const
{
    j.beginObject();
    j.kv("schema_version", kSchemaVersion);
    j.key("counters").beginObject();
    for (const auto &[name, v] : counters_.all())
        j.kv(name, v);
    j.endObject();
    j.key("queue_us");
    appendHistogramJson(j, queueUs_);
    j.key("total_us");
    appendHistogramJson(j, totalUs_);
    j.kv("makespan_us", makespanSec() * 1e6);
    j.kv("throughput_rps", throughputRps());
    j.kv("prediction_mismatches", mismatches_);
    j.endObject();
}

} // namespace tsp::serve
