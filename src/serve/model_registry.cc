#include "serve/model_registry.hh"

#include <limits>
#include <utility>

#include "common/logging.hh"
#include "runtime/session.hh"

namespace tsp::serve {

ModelRegistry::ModelRegistry(std::vector<ModelSpec> specs,
                             std::size_t budget_bytes)
    : budget_(budget_bytes)
{
    TSP_ASSERT(!specs.empty());
    models_.reserve(specs.size());
    for (auto &spec : specs) {
        TSP_ASSERT(spec.maxBatch >= 1);
        Model m;
        m.cache = std::make_unique<BatchProgramCache>(
            spec.graph, spec.warmInput, spec.maxBatch,
            spec.pipelined);
        m.lruStamp.assign(static_cast<std::size_t>(spec.maxBatch),
                          0);
        m.spec = std::move(spec);
        models_.push_back(std::move(m));
    }
}

const std::string &
ModelRegistry::name(int m) const
{
    return models_.at(static_cast<std::size_t>(m)).spec.name;
}

int
ModelRegistry::maxBatch(int m) const
{
    return models_.at(static_cast<std::size_t>(m)).spec.maxBatch;
}

std::size_t
ModelRegistry::expectedInputBytes(int m) const
{
    return models_.at(static_cast<std::size_t>(m))
        .spec.warmInput.size();
}

Cycle
ModelRegistry::cycles(int m, int b) const
{
    return models_.at(static_cast<std::size_t>(m))
        .cache->cycles(b);
}

double
ModelRegistry::swapSec(int m, int b) const
{
    const BatchProgram &bp =
        models_.at(static_cast<std::size_t>(m)).cache->get(b);
    return static_cast<double>(bp.lw->image().totalBytes()) /
           kPcieGen4Bps;
}

std::shared_ptr<BatchProgram>
ModelRegistry::acquire(int m, int b)
{
    Model &model = models_.at(static_cast<std::size_t>(m));
    std::shared_ptr<BatchProgram> bp = model.cache->acquire(b);
    model.lruStamp.at(static_cast<std::size_t>(b - 1)) = ++tick_;
    evictOverBudget(m, b);
    return bp;
}

void
ModelRegistry::evictOverBudget(int keep_m, int keep_b)
{
    while (residentBytes() > budget_) {
        // Oldest resident (model, batch), skipping the program the
        // caller just acquired — it is about to be bound/run.
        int victim_m = -1;
        int victim_b = -1;
        std::uint64_t oldest =
            std::numeric_limits<std::uint64_t>::max();
        for (std::size_t mi = 0; mi < models_.size(); ++mi) {
            const Model &model = models_[mi];
            for (int b = 1; b <= model.spec.maxBatch; ++b) {
                if (static_cast<int>(mi) == keep_m && b == keep_b)
                    continue;
                if (!model.cache->compiled(b))
                    continue;
                const std::uint64_t stamp =
                    model.lruStamp[static_cast<std::size_t>(b - 1)];
                if (stamp < oldest) {
                    oldest = stamp;
                    victim_m = static_cast<int>(mi);
                    victim_b = b;
                }
            }
        }
        if (victim_m < 0)
            break; // Only the just-acquired program remains.
        std::shared_ptr<BatchProgram> evicted =
            models_[static_cast<std::size_t>(victim_m)]
                .cache->evict(victim_b);
        TSP_ASSERT(evicted != nullptr);
        ++evictions_;
        // Eager trace invalidation: a swapped-out program's traces
        // must not pin the shared trace-cache byte budget until a
        // lookup happens to miss on them.
        if (traces_)
            traces_->invalidate(
                {evicted->prog.get(), evicted->progHash});
    }
}

bool
ModelRegistry::compiled(int m, int b) const
{
    return models_.at(static_cast<std::size_t>(m))
        .cache->compiled(b);
}

std::size_t
ModelRegistry::residentBytes() const
{
    std::size_t bytes = 0;
    for (const auto &model : models_)
        bytes += model.cache->residentBytes();
    return bytes;
}

std::uint64_t
ModelRegistry::compileCount() const
{
    std::uint64_t n = 0;
    for (const auto &model : models_)
        n += model.cache->compileCount();
    return n;
}

BatchProgramCache &
ModelRegistry::cache(int m)
{
    return *models_.at(static_cast<std::size_t>(m)).cache;
}

const BatchProgramCache &
ModelRegistry::cache(int m) const
{
    return *models_.at(static_cast<std::size_t>(m)).cache;
}

} // namespace tsp::serve
