#include "serve/admission.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/stats.hh"

namespace tsp::serve {

ModelTiming
ModelTiming::fromTable(std::vector<Cycle> cycles_by_batch)
{
    TSP_ASSERT(!cycles_by_batch.empty());
    TSP_ASSERT(cycles_by_batch[0] > 0);
    // Strictly increasing: a bigger batch takes longer — but the
    // batcher only wins when it is *sublinear*, which tests pin.
    for (std::size_t i = 1; i < cycles_by_batch.size(); ++i)
        TSP_ASSERT(cycles_by_batch[i] > cycles_by_batch[i - 1]);
    auto table = std::make_shared<std::vector<Cycle>>(
        std::move(cycles_by_batch));
    ModelTiming t;
    t.cyclesOf = [table](int m, int b) {
        TSP_ASSERT(m == 0);
        TSP_ASSERT(b >= 1 && b <= static_cast<int>(table->size()));
        return (*table)[static_cast<std::size_t>(b - 1)];
    };
    t.maxBatchOf = [table](int m) {
        TSP_ASSERT(m == 0);
        return static_cast<int>(table->size());
    };
    t.swapSecOf = nullptr; // Single family: never swaps.
    return t;
}

AdmissionController::AdmissionController(int workers,
                                         Cycle service_cycles,
                                         double cycle_period_sec)
    : AdmissionController(workers,
                          std::vector<Cycle>{service_cycles},
                          cycle_period_sec)
{
}

AdmissionController::AdmissionController(
    int workers, std::vector<Cycle> cycles_by_batch,
    double cycle_period_sec)
    : AdmissionController(
          workers, 1, ModelTiming::fromTable(std::move(cycles_by_batch)),
          cycle_period_sec)
{
}

AdmissionController::AdmissionController(int workers, int models,
                                         ModelTiming timing,
                                         double cycle_period_sec)
    : timing_(std::move(timing)), periodSec_(cycle_period_sec),
      models_(models)
{
    TSP_ASSERT(workers >= 1);
    TSP_ASSERT(models_ >= 1);
    TSP_ASSERT(cycle_period_sec > 0.0);
    TSP_ASSERT(timing_.cyclesOf != nullptr);
    TSP_ASSERT(timing_.maxBatchOf != nullptr);
    freeAt_.assign(static_cast<std::size_t>(workers), 0.0);
    // Every worker starts staged with family 0, mirroring the
    // server's warm bind; for a single family all swap terms are
    // zero and every booking reduces to the classic rule.
    staged_.assign(static_cast<std::size_t>(workers), 0);
}

int
AdmissionController::earliestWorkerLocked() const
{
    return static_cast<int>(
        std::min_element(freeAt_.begin(), freeAt_.end()) -
        freeAt_.begin());
}

double
AdmissionController::swapSecLocked(int w, int model) const
{
    if (staged_[static_cast<std::size_t>(w)] == model)
        return 0.0;
    return timing_.swapSecOf ? timing_.swapSecOf(model) : 0.0;
}

int
AdmissionController::bestWorkerLocked(int model,
                                      double arrival_sec) const
{
    // Minimize completion; break ties toward the earliest-free
    // worker, then the lowest index. With all swap terms zero this
    // selects exactly min_element(freeAt_): any worker free before
    // arrival ties on completion and the earliest-free tie-break
    // recovers the global minimum.
    int best = 0;
    double best_comp = 0.0, best_free = 0.0;
    for (int w = 0; w < static_cast<int>(freeAt_.size()); ++w) {
        const double free_at = freeAt_[static_cast<std::size_t>(w)];
        const double comp = std::max(arrival_sec, free_at) +
                            swapSecLocked(w, model) +
                            serviceSecLocked(model, 1);
        if (w == 0 || comp < best_comp ||
            (comp == best_comp && free_at < best_free)) {
            best = w;
            best_comp = comp;
            best_free = free_at;
        }
    }
    return best;
}

double
AdmissionController::serviceSecLocked(int model, int b) const
{
    return static_cast<double>(timing_.cyclesOf(model, b)) *
           periodSec_;
}

Cycle
AdmissionController::serviceCycles(int b) const
{
    return timing_.cyclesOf(0, b);
}

double
AdmissionController::serviceSec(int b) const
{
    return serviceSecLocked(0, b);
}

Cycle
AdmissionController::serviceCyclesFor(int model, int b) const
{
    return timing_.cyclesOf(model, b);
}

double
AdmissionController::serviceSecFor(int model, int b) const
{
    return serviceSecLocked(model, b);
}

int
AdmissionController::maxBatch() const
{
    return timing_.maxBatchOf(0);
}

int
AdmissionController::maxBatchFor(int model) const
{
    return timing_.maxBatchOf(model);
}

Admission
AdmissionController::admit(double arrival_sec, double deadline_sec)
{
    Admission a = open(arrival_sec, deadline_sec, 0);
    if (a.admitted)
        seal();
    return a;
}

Admission
AdmissionController::open(double arrival_sec, double deadline_sec,
                          int model)
{
    std::lock_guard<std::mutex> lock(mu_);
    return openLocked(arrival_sec, deadline_sec, model);
}

Admission
AdmissionController::openLocked(double arrival_sec,
                                double deadline_sec, int model)
{
    TSP_ASSERT(!open_.active);
    TSP_ASSERT(model >= 0 && model < models_);
    Admission a;
    a.worker = bestWorkerLocked(model, arrival_sec);
    const double free_at =
        freeAt_[static_cast<std::size_t>(a.worker)];
    const double swap = swapSecLocked(a.worker, model);
    // The swap starts the moment the booking decides it (arrival)
    // or when the worker frees up, whichever is later; the service
    // window opens once the weights are staged.
    const double ready =
        std::max(arrival_sec, free_at) + swap;
    a.swapSec = swap;
    a.startSec = ready;
    a.completionSec = a.startSec + serviceSecLocked(model, 1);
    if (deadline_sec > 0.0 && a.completionSec > deadline_sec) {
        // Provably infeasible: the *best case* already misses. No
        // booking, no queue slot, no chip cycles.
        a.admitted = false;
        ++rejected_;
        return a;
    }
    a.admitted = true;
    a.batch = 1;
    freeAt_[static_cast<std::size_t>(a.worker)] = a.completionSec;
    ++admitted_;

    open_.active = true;
    open_.worker = a.worker;
    open_.model = model;
    open_.size = 1;
    open_.baseFree = free_at;
    open_.prevStaged = staged_[static_cast<std::size_t>(a.worker)];
    open_.swapSec = swap;
    open_.readyAt = ready;
    open_.maxArrival = arrival_sec;
    open_.minDeadline = deadline_sec > 0.0 ? deadline_sec : 0.0;
    open_.startSec = a.startSec;
    open_.completionSec = a.completionSec;
    staged_[static_cast<std::size_t>(a.worker)] = model;
    return a;
}

Admission
AdmissionController::tryJoin(double arrival_sec, double deadline_sec)
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(open_.active);
    Admission a;
    a.worker = open_.worker;
    a.swapSec = open_.swapSec;
    const int k = open_.size + 1;
    if (k > timing_.maxBatchOf(open_.model)) {
        a.admitted = false;
        return a;
    }
    // The whole batch starts when its weights are staged and its
    // *last* member has arrived, and runs the exact batch-k program.
    const double max_arrival =
        std::max(open_.maxArrival, arrival_sec);
    a.startSec = std::max(open_.readyAt, max_arrival);
    a.completionSec =
        a.startSec + serviceSecLocked(open_.model, k);
    const bool members_ok =
        open_.minDeadline <= 0.0 ||
        a.completionSec <= open_.minDeadline;
    const bool self_ok =
        deadline_sec <= 0.0 || a.completionSec <= deadline_sec;
    if (!members_ok || !self_ok) {
        // Not counted as rejected: the caller seals this batch and
        // retries the request as the opener of the next one.
        a.admitted = false;
        return a;
    }
    a.admitted = true;
    a.batch = k;
    open_.size = k;
    open_.maxArrival = max_arrival;
    if (deadline_sec > 0.0)
        open_.minDeadline = open_.minDeadline <= 0.0
                                ? deadline_sec
                                : std::min(open_.minDeadline,
                                           deadline_sec);
    open_.startSec = a.startSec;
    open_.completionSec = a.completionSec;
    freeAt_[static_cast<std::size_t>(open_.worker)] =
        a.completionSec;
    ++admitted_;
    return a;
}

Admission
AdmissionController::seal()
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(open_.active);
    Admission a;
    a.admitted = true;
    a.worker = open_.worker;
    a.batch = open_.size;
    a.startSec = open_.startSec;
    a.completionSec = open_.completionSec;
    a.swapSec = open_.swapSec;
    open_ = OpenBatch{};
    return a;
}

void
AdmissionController::rollbackOpen()
{
    std::lock_guard<std::mutex> lock(mu_);
    rollbackOpenLocked();
}

void
AdmissionController::rollbackOpenLocked()
{
    TSP_ASSERT(open_.active);
    // The open batch's booking is the only admission state it has
    // touched; undoing it restores the controller bit-for-bit to
    // the pre-open() timeline.
    freeAt_[static_cast<std::size_t>(open_.worker)] = open_.baseFree;
    staged_[static_cast<std::size_t>(open_.worker)] =
        open_.prevStaged;
    TSP_ASSERT(admitted_ >= static_cast<std::uint64_t>(open_.size));
    admitted_ -= static_cast<std::uint64_t>(open_.size);
    open_ = OpenBatch{};
}

double
AdmissionController::completionIfPreempted(double arrival_sec,
                                           int model) const
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(open_.active);
    TSP_ASSERT(model >= 0 && model < models_);
    double best = 0.0;
    for (int w = 0; w < static_cast<int>(freeAt_.size()); ++w) {
        // Hypothetical state with the open batch rolled back.
        const bool victim = w == open_.worker;
        const double free_at =
            victim ? open_.baseFree
                   : freeAt_[static_cast<std::size_t>(w)];
        const int staged =
            victim ? open_.prevStaged
                   : staged_[static_cast<std::size_t>(w)];
        const double swap =
            staged == model
                ? 0.0
                : (timing_.swapSecOf ? timing_.swapSecOf(model)
                                     : 0.0);
        const double comp = std::max(arrival_sec, free_at) + swap +
                            serviceSecLocked(model, 1);
        if (w == 0 || comp < best)
            best = comp;
    }
    return best;
}

bool
AdmissionController::hasOpenBatch() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return open_.active;
}

int
AdmissionController::openModel() const
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(open_.active);
    return open_.model;
}

int
AdmissionController::openSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(open_.active);
    return open_.size;
}

double
AdmissionController::earliestCompletion(double arrival_sec) const
{
    return earliestCompletionFor(0, arrival_sec);
}

double
AdmissionController::earliestCompletionFor(int model,
                                           double arrival_sec) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const int w = bestWorkerLocked(model, arrival_sec);
    const double free_at = freeAt_[static_cast<std::size_t>(w)];
    return std::max(arrival_sec, free_at) +
           swapSecLocked(w, model) + serviceSecLocked(model, 1);
}

int
AdmissionController::earliestWorker() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return earliestWorkerLocked();
}

int
AdmissionController::bestWorkerFor(int model,
                                   double arrival_sec) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bestWorkerLocked(model, arrival_sec);
}

int
AdmissionController::stagedModel(int w) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return staged_.at(static_cast<std::size_t>(w));
}

double
AdmissionController::busyUntil() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return *std::max_element(freeAt_.begin(), freeAt_.end());
}

double
AdmissionController::backlogSec(double now_sec) const
{
    std::lock_guard<std::mutex> lock(mu_);
    // Per-worker backlogs are set by concurrently finishing batches;
    // sum them order-independently so the report (and the autoscaler
    // decisions fed by it) depend only on the backlog multiset. Fine
    // scale: per-request service times can be sub-microsecond.
    FineFixedPointSum total;
    for (const double f : freeAt_)
        total.add(std::max(0.0, f - now_sec));
    return total.value();
}

std::uint64_t
AdmissionController::admitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return admitted_;
}

std::uint64_t
AdmissionController::rejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

} // namespace tsp::serve
