#include "serve/admission.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tsp::serve {

AdmissionController::AdmissionController(int workers,
                                         Cycle service_cycles,
                                         double cycle_period_sec)
    : AdmissionController(workers,
                          std::vector<Cycle>{service_cycles},
                          cycle_period_sec)
{
}

AdmissionController::AdmissionController(
    int workers, std::vector<Cycle> cycles_by_batch,
    double cycle_period_sec)
    : cyclesByBatch_(std::move(cycles_by_batch)),
      periodSec_(cycle_period_sec)
{
    TSP_ASSERT(workers >= 1);
    TSP_ASSERT(cycle_period_sec > 0.0);
    TSP_ASSERT(!cyclesByBatch_.empty());
    TSP_ASSERT(cyclesByBatch_[0] > 0);
    // Strictly increasing: a bigger batch takes longer — but the
    // batcher only wins when it is *sublinear*, which tests pin.
    for (std::size_t i = 1; i < cyclesByBatch_.size(); ++i)
        TSP_ASSERT(cyclesByBatch_[i] > cyclesByBatch_[i - 1]);
    freeAt_.assign(static_cast<std::size_t>(workers), 0.0);
}

int
AdmissionController::earliestWorkerLocked() const
{
    return static_cast<int>(
        std::min_element(freeAt_.begin(), freeAt_.end()) -
        freeAt_.begin());
}

double
AdmissionController::serviceSecLocked(int b) const
{
    TSP_ASSERT(b >= 1 && b <= static_cast<int>(cyclesByBatch_.size()));
    return static_cast<double>(
               cyclesByBatch_[static_cast<std::size_t>(b - 1)]) *
           periodSec_;
}

Cycle
AdmissionController::serviceCycles(int b) const
{
    TSP_ASSERT(b >= 1 && b <= static_cast<int>(cyclesByBatch_.size()));
    return cyclesByBatch_[static_cast<std::size_t>(b - 1)];
}

double
AdmissionController::serviceSec(int b) const
{
    return serviceSecLocked(b);
}

Admission
AdmissionController::admit(double arrival_sec, double deadline_sec)
{
    Admission a = open(arrival_sec, deadline_sec);
    if (a.admitted)
        seal();
    return a;
}

Admission
AdmissionController::open(double arrival_sec, double deadline_sec)
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(!open_.active);
    Admission a;
    a.worker = earliestWorkerLocked();
    const double free_at =
        freeAt_[static_cast<std::size_t>(a.worker)];
    a.startSec = std::max(arrival_sec, free_at);
    a.completionSec = a.startSec + serviceSecLocked(1);
    if (deadline_sec > 0.0 && a.completionSec > deadline_sec) {
        // Provably infeasible: the *best case* already misses. No
        // booking, no queue slot, no chip cycles.
        a.admitted = false;
        ++rejected_;
        return a;
    }
    a.admitted = true;
    a.batch = 1;
    freeAt_[static_cast<std::size_t>(a.worker)] = a.completionSec;
    ++admitted_;

    open_.active = true;
    open_.worker = a.worker;
    open_.size = 1;
    open_.baseFree = free_at;
    open_.maxArrival = arrival_sec;
    open_.minDeadline = deadline_sec > 0.0 ? deadline_sec : 0.0;
    open_.startSec = a.startSec;
    open_.completionSec = a.completionSec;
    return a;
}

Admission
AdmissionController::tryJoin(double arrival_sec, double deadline_sec)
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(open_.active);
    Admission a;
    a.worker = open_.worker;
    const int k = open_.size + 1;
    if (k > maxBatch()) {
        a.admitted = false;
        return a;
    }
    // The whole batch starts when its worker is free and its *last*
    // member has arrived, and runs the exact batch-k program.
    const double max_arrival =
        std::max(open_.maxArrival, arrival_sec);
    a.startSec = std::max(open_.baseFree, max_arrival);
    a.completionSec = a.startSec + serviceSecLocked(k);
    const bool members_ok =
        open_.minDeadline <= 0.0 ||
        a.completionSec <= open_.minDeadline;
    const bool self_ok =
        deadline_sec <= 0.0 || a.completionSec <= deadline_sec;
    if (!members_ok || !self_ok) {
        // Not counted as rejected: the caller seals this batch and
        // retries the request as the opener of the next one.
        a.admitted = false;
        return a;
    }
    a.admitted = true;
    a.batch = k;
    open_.size = k;
    open_.maxArrival = max_arrival;
    if (deadline_sec > 0.0)
        open_.minDeadline = open_.minDeadline <= 0.0
                                ? deadline_sec
                                : std::min(open_.minDeadline,
                                           deadline_sec);
    open_.startSec = a.startSec;
    open_.completionSec = a.completionSec;
    freeAt_[static_cast<std::size_t>(open_.worker)] =
        a.completionSec;
    ++admitted_;
    return a;
}

Admission
AdmissionController::seal()
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(open_.active);
    Admission a;
    a.admitted = true;
    a.worker = open_.worker;
    a.batch = open_.size;
    a.startSec = open_.startSec;
    a.completionSec = open_.completionSec;
    open_ = OpenBatch{};
    return a;
}

bool
AdmissionController::hasOpenBatch() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return open_.active;
}

double
AdmissionController::earliestCompletion(double arrival_sec) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const double free_at =
        freeAt_[static_cast<std::size_t>(earliestWorkerLocked())];
    return std::max(arrival_sec, free_at) + serviceSecLocked(1);
}

int
AdmissionController::earliestWorker() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return earliestWorkerLocked();
}

double
AdmissionController::busyUntil() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return *std::max_element(freeAt_.begin(), freeAt_.end());
}

double
AdmissionController::backlogSec(double now_sec) const
{
    std::lock_guard<std::mutex> lock(mu_);
    double total = 0.0;
    for (const double f : freeAt_)
        total += std::max(0.0, f - now_sec);
    return total;
}

std::uint64_t
AdmissionController::admitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return admitted_;
}

std::uint64_t
AdmissionController::rejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

} // namespace tsp::serve
