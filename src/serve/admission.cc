#include "serve/admission.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tsp::serve {

AdmissionController::AdmissionController(int workers,
                                         Cycle service_cycles,
                                         double cycle_period_sec)
    : serviceCycles_(service_cycles),
      serviceSec_(static_cast<double>(service_cycles) *
                  cycle_period_sec)
{
    TSP_ASSERT(workers >= 1);
    TSP_ASSERT(service_cycles > 0);
    TSP_ASSERT(cycle_period_sec > 0.0);
    freeAt_.assign(static_cast<std::size_t>(workers), 0.0);
}

int
AdmissionController::earliestWorkerLocked() const
{
    return static_cast<int>(
        std::min_element(freeAt_.begin(), freeAt_.end()) -
        freeAt_.begin());
}

Admission
AdmissionController::admit(double arrival_sec, double deadline_sec)
{
    std::lock_guard<std::mutex> lock(mu_);
    Admission a;
    a.worker = earliestWorkerLocked();
    const double free_at = freeAt_[static_cast<std::size_t>(a.worker)];
    a.startSec = std::max(arrival_sec, free_at);
    a.completionSec = a.startSec + serviceSec_;
    if (deadline_sec > 0.0 && a.completionSec > deadline_sec) {
        // Provably infeasible: the *best case* already misses. No
        // booking, no queue slot, no chip cycles.
        a.admitted = false;
        ++rejected_;
        return a;
    }
    a.admitted = true;
    freeAt_[static_cast<std::size_t>(a.worker)] = a.completionSec;
    ++admitted_;
    return a;
}

double
AdmissionController::earliestCompletion(double arrival_sec) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const double free_at =
        freeAt_[static_cast<std::size_t>(earliestWorkerLocked())];
    return std::max(arrival_sec, free_at) + serviceSec_;
}

std::uint64_t
AdmissionController::admitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return admitted_;
}

std::uint64_t
AdmissionController::rejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

} // namespace tsp::serve
