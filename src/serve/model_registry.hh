/**
 * @file
 * Multi-model registry: N compiled model families behind one server.
 *
 * Production TSP fleets serve many models per pod. The registry owns
 * one lazily compiled BatchProgramCache per model family and presents
 * the serving layer a single keyed surface: (model-id, batch-size) →
 * compiled program. Three properties make exact multi-tenant
 * admission possible on top of it:
 *
 *  - cycles(m, b) is exact and memoized forever: compilation is a
 *    pure function of the graph, so the admission controller's
 *    feasibility arithmetic never estimates, even for programs that
 *    were evicted and will be recompiled.
 *  - swapSec(m, b) is the modeled host cost of re-staging model m's
 *    batch-b weight image over PCIe when a worker switches model
 *    families — booked *exactly* into admission completions, the
 *    same way engine-rebuild cost is booked into retries.
 *  - acquire() pins the program with a shared_ptr, so LRU eviction
 *    under the byte budget can never yank a program out from under a
 *    sealed batch riding a queue or a worker's bound engine.
 *
 * Eviction is *eager* about derived state: dropping a model's
 * compiled program immediately invalidates its execution traces in
 * the attached TraceCache. (Previously dead traces lingered until a
 * lookup happened to miss on the fingerprint, pinning the shared
 * byte budget and evicting the hot model's traces.)
 *
 * Threading: acquire()/eviction and the LRU clock run on the
 * server's submit path (single-threaded under the submit lock), so
 * the eviction sequence — and therefore every registry counter in
 * the metrics report — is a pure function of the admission history.
 * cycles()/swapSec() are internally locked and may be read anywhere.
 */

#ifndef TSP_SERVE_MODEL_REGISTRY_HH
#define TSP_SERVE_MODEL_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/batch_program.hh"
#include "sim/exec_trace.hh"

namespace tsp::serve {

/** One model family as registered by the operator. */
struct ModelSpec
{
    /** Stable name (metrics, CLI, routing logs). */
    std::string name;

    /** The model graph; compiled per batch size on first use. */
    Graph graph;

    /** Placeholder input DMA'd with each sample slot; its size is
     * the family's exact expected request payload. */
    std::vector<std::int8_t> warmInput;

    /** Largest batch size the batcher may form for this family. */
    int maxBatch = 1;

    /** Compile with the pipelined scheduler (default). */
    bool pipelined = true;
};

/** N model families keyed by (model-id, batch-size). */
class ModelRegistry
{
  public:
    /** Default compiled-program byte budget (effectively unbounded
     * for the simulated tiny/dense families; set lower to force
     * swap traffic). */
    static constexpr std::size_t kDefaultBudget =
        std::size_t{1} << 30;

    explicit ModelRegistry(std::vector<ModelSpec> specs,
                           std::size_t budget_bytes = kDefaultBudget);

    /** @return registered model families. */
    int modelCount() const
    {
        return static_cast<int>(models_.size());
    }

    /** @return family @p m's stable name. */
    const std::string &name(int m) const;

    /** @return family @p m's largest compilable batch size. */
    int maxBatch(int m) const;

    /** @return exact bytes one of family @p m's requests must have. */
    std::size_t expectedInputBytes(int m) const;

    /** @return exact cycles of family @p m's batch-@p b program
     * (compiles on first use; memoized forever). */
    Cycle cycles(int m, int b) const;

    /**
     * @return modeled seconds to re-stage family @p m's batch-@p b
     * weight/constant image over the host link when a worker
     * switches model families (image bytes at PCIe Gen4 x16).
     */
    double swapSec(int m, int b) const;

    /**
     * @return a pinned handle to family @p m's batch-@p b program,
     * compiling it on first use, refreshing its LRU stamp, and
     * evicting least-recently-used programs (with eager trace
     * invalidation) while the resident total exceeds the budget.
     * The just-acquired program is never evicted by its own acquire.
     * Submit-path only (see file comment).
     */
    std::shared_ptr<BatchProgram> acquire(int m, int b);

    /** Attaches the serving pool's shared trace cache so eviction
     * can drop a swapped-out model's traces eagerly. */
    void attachTraceCache(std::shared_ptr<TraceCache> traces)
    {
        traces_ = std::move(traces);
    }

    /** @return true when (m, b) is currently resident. */
    bool compiled(int m, int b) const;

    /** @return bytes currently held by resident programs. */
    std::size_t residentBytes() const;

    /** @return total compilations (recompiles after eviction count). */
    std::uint64_t compileCount() const;

    /** @return programs evicted under the byte budget. */
    std::uint64_t evictions() const { return evictions_; }

    /** @return the configured byte budget. */
    std::size_t budgetBytes() const { return budget_; }

    /** @return family @p m's underlying cache (tests). */
    BatchProgramCache &cache(int m);
    const BatchProgramCache &cache(int m) const;

  private:
    struct Model
    {
        ModelSpec spec;
        std::unique_ptr<BatchProgramCache> cache;
        /** lruStamp[b-1]: acquire tick; 0 = never acquired. */
        std::vector<std::uint64_t> lruStamp;
    };

    void evictOverBudget(int keep_m, int keep_b);

    std::vector<Model> models_;
    std::size_t budget_;
    std::shared_ptr<TraceCache> traces_;
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace tsp::serve

#endif // TSP_SERVE_MODEL_REGISTRY_HH
