/**
 * @file
 * Serving-layer metrics: per-outcome counters, queue/service/total
 * latency distributions (virtual microseconds) and throughput over
 * the virtual makespan, dumped as JSON for the bench trajectory.
 *
 * The latency histograms' upper bound is *computed, not guessed*:
 * with a known constant service time, W workers and a queue of at
 * most Q requests, no admitted request can wait longer than
 * ceil(Q / W) service times — another consequence of deterministic
 * execution (a conventional serving stack must clamp or resize).
 */

#ifndef TSP_SERVE_METRICS_HH
#define TSP_SERVE_METRICS_HH

#include <cstdint>

#include "common/json.hh"
#include "common/stats.hh"
#include "serve/request.hh"

namespace tsp::serve {

/** Aggregated serving statistics (value type; snapshot-copyable). */
class ServerMetrics
{
  public:
    /**
     * @param service_sec exact per-request service time.
     * @param workers pool size.
     * @param queue_capacity bounded-queue capacity.
     */
    ServerMetrics(double service_sec, int workers,
                  std::size_t queue_capacity);

    /** Accounts one finished request (any outcome). */
    void record(const Result &r);

    /** @return named outcome/infrastructure counters. */
    const StatGroup &counters() const { return counters_; }

    /** @return queue-wait distribution, microseconds. */
    const Histogram &queueUs() const { return queueUs_; }

    /** @return arrival-to-completion distribution, microseconds. */
    const Histogram &totalUs() const { return totalUs_; }

    /** @return served requests per virtual second. */
    double throughputRps() const;

    /** @return virtual seconds from first arrival to last completion. */
    double makespanSec() const;

    /**
     * @return how many served requests' measured cycles diverged
     * from the admission-time prediction — zero by the determinism
     * claim; nonzero means a simulator bug.
     */
    std::uint64_t predictionMismatches() const { return mismatches_; }

    /** Appends this snapshot as a JSON object value to @p j. */
    void appendJson(JsonWriter &j) const;

  private:
    StatGroup counters_;
    Histogram queueUs_;
    Histogram totalUs_;
    std::uint64_t mismatches_ = 0;
    double firstArrival_ = 0.0;
    double lastCompletion_ = 0.0;
    bool any_ = false;
};

} // namespace tsp::serve

#endif // TSP_SERVE_METRICS_HH
