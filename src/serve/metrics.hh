/**
 * @file
 * Serving-layer metrics: per-outcome counters, queue/service/total
 * latency distributions (virtual microseconds) and throughput over
 * the virtual makespan, dumped as JSON for the bench trajectory.
 *
 * The latency histograms' upper bound is *computed, not guessed*:
 * with a known constant service time, W workers and a queue of at
 * most Q requests, no admitted request can wait longer than
 * ceil(Q / W) service times — another consequence of deterministic
 * execution (a conventional serving stack must clamp or resize).
 */

#ifndef TSP_SERVE_METRICS_HH
#define TSP_SERVE_METRICS_HH

#include <cstdint>

#include "common/json.hh"
#include "common/stats.hh"
#include "serve/request.hh"

namespace tsp::serve {

/** Aggregated serving statistics (value type; snapshot-copyable). */
class ServerMetrics
{
  public:
    /**
     * Report schema version, emitted as `schema_version`. Bump when
     * fields are added/renamed so report consumers can distinguish
     * "zero" from "not emitted by this build". Version 2: every
     * outcome and reliability counter is always present (zeros
     * included) and the preemption counters exist.
     */
    static constexpr std::uint64_t kSchemaVersion = 2;

    /**
     * @param service_sec exact per-request service time.
     * @param workers pool size.
     * @param queue_capacity bounded-queue capacity.
     */
    ServerMetrics(double service_sec, int workers,
                  std::size_t queue_capacity);

    /** Accounts one finished request (any outcome). */
    void record(const Result &r);

    /**
     * Accounts one executed batch. Per-member outcomes and latencies
     * are recorded individually, but the batch-shared reliability
     * counters (machine checks, retries, ECC corrections) are
     * recorded once — they describe the one physical run the members
     * shared, and per-member recording would multiply-count them
     * against the backend's own totals.
     */
    void recordBatch(const std::vector<Result> &results);

    /**
     * Accounts one priority preemption: the open batch's @p requeued
     * members were re-admitted behind the preemptor and @p shed
     * members were provably infeasible after the rollback (they
     * resolve as RejectedDeadline; preempted work is re-decided,
     * never dropped).
     */
    void recordPreemption(std::uint64_t requeued, std::uint64_t shed);

    /** @return named outcome/infrastructure counters. */
    const StatGroup &counters() const { return counters_; }

    /** @return queue-wait distribution, microseconds. */
    const Histogram &queueUs() const { return queueUs_; }

    /** @return arrival-to-completion distribution, microseconds. */
    const Histogram &totalUs() const { return totalUs_; }

    /**
     * @return served requests per virtual second: the `served` count
     * over the window spanned by *served* completions only. Requests
     * that completed past their deadline still extend makespanSec()
     * (they occupied the pool) but are excluded here, keeping the
     * numerator and the window consistent.
     */
    double throughputRps() const;

    /** @return virtual seconds from first arrival to last completion
     * across every executed request (deadline misses included). */
    double makespanSec() const;

    /**
     * @return how many served requests' measured cycles diverged
     * from the admission-time prediction — zero by the determinism
     * claim; nonzero means a simulator bug.
     */
    std::uint64_t predictionMismatches() const { return mismatches_; }

    /** Appends this snapshot as a JSON object value to @p j. */
    void appendJson(JsonWriter &j) const;

  private:
    void recordOne(const Result &r, bool count_reliability);

    StatGroup counters_;
    Histogram queueUs_;
    Histogram totalUs_;
    std::uint64_t mismatches_ = 0;
    double firstArrival_ = 0.0;
    double lastCompletion_ = 0.0;
    bool any_ = false;
    /** Served-only completion window for throughputRps(). */
    double servedFirstArrival_ = 0.0;
    double servedLastCompletion_ = 0.0;
    bool anyServed_ = false;
};

} // namespace tsp::serve

#endif // TSP_SERVE_METRICS_HH
