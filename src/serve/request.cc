#include "serve/request.hh"

namespace tsp::serve {

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Served: return "served";
      case Outcome::RejectedDeadline: return "rejected_deadline";
      case Outcome::RejectedQueueFull: return "rejected_queue_full";
      case Outcome::RejectedInvalid: return "rejected_invalid";
      case Outcome::DeadlineMissed: return "deadline_missed";
      case Outcome::Failed: return "failed";
      case Outcome::FailedMachineCheck: return "failed_machine_check";
    }
    return "unknown";
}

} // namespace tsp::serve
