/**
 * @file
 * A thread-safe bounded FIFO queue — the serving layer's backpressure
 * point. Producers either block until space frees (open-loop load
 * generators that model backpressure as delay) or fail fast
 * (tryPush, surfaced to clients as Outcome::RejectedQueueFull).
 *
 * This is the *host-side* queue in front of the chip pool; it is
 * deliberately generic (template) so the unit tests can exercise the
 * concurrency contract with trivial payloads.
 */

#ifndef TSP_SERVE_REQUEST_QUEUE_HH
#define TSP_SERVE_REQUEST_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace tsp::serve {

/** Why a non-blocking pop returned without an element. */
enum class PopResult : std::uint8_t
{
    Item,   ///< An element was dequeued.
    Empty,  ///< Momentarily empty; more may arrive.
    Closed, ///< Closed *and* drained: no element will ever arrive.
};

/** Bounded multi-producer multi-consumer FIFO. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum queued elements; must be > 0. */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /** @return maximum queued elements. */
    std::size_t capacity() const { return capacity_; }

    /** @return current element count (racy between calls). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    /** @return true when size() == capacity() (racy between calls). */
    bool
    full() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size() >= capacity_;
    }

    /**
     * Enqueues without blocking. On failure @p item is left intact
     * (not moved from), so the caller can still resolve it.
     * @return false when the queue is full or closed.
     */
    bool
    tryPush(T &&item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return true;
    }

    bool
    tryPush(const T &item)
    {
        return tryPush(T(item));
    }

    /**
     * Enqueues, blocking while the queue is full. close() wakes
     * blocked pushers, which then fail. On failure @p item is left
     * intact (not moved from), so the caller can still resolve it.
     * @return false when the queue is (or becomes) closed.
     */
    bool
    push(T &&item)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notFull_.wait(lock, [&] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return true;
    }

    bool
    push(const T &item)
    {
        return push(T(item));
    }

    /**
     * Dequeues the oldest element, blocking while empty.
     * @return false when the queue is closed *and* drained — the
     * consumer-side shutdown signal.
     */
    bool
    pop(T &out)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock,
                           [&] { return closed_ || !items_.empty(); });
            if (items_.empty())
                return false; // Closed and drained.
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return true;
    }

    /**
     * Dequeues without blocking. Unlike a bare bool, the tri-state
     * result lets a non-blocking consumer tell a momentary lull
     * (Empty: spin/poll again) from shutdown (Closed: the queue is
     * closed and drained; no element will ever arrive).
     */
    PopResult
    tryPop(T &out)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (items_.empty())
                return closed_ ? PopResult::Closed
                               : PopResult::Empty;
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return PopResult::Item;
    }

    /**
     * Closes the queue: pushes fail from now on; pops drain what is
     * left and then return false. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** @return true once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace tsp::serve

#endif // TSP_SERVE_REQUEST_QUEUE_HH
