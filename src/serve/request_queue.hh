/**
 * @file
 * A thread-safe bounded FIFO queue — the serving layer's backpressure
 * point. Producers either block until space frees (open-loop load
 * generators that model backpressure as delay) or fail fast
 * (tryPush, surfaced to clients as Outcome::RejectedQueueFull).
 *
 * This is the *host-side* queue in front of the chip pool; it is
 * deliberately generic (template) so the unit tests can exercise the
 * concurrency contract with trivial payloads.
 */

#ifndef TSP_SERVE_REQUEST_QUEUE_HH
#define TSP_SERVE_REQUEST_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace tsp::serve {

/** Bounded multi-producer multi-consumer FIFO. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum queued elements; must be > 0. */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /** @return maximum queued elements. */
    std::size_t capacity() const { return capacity_; }

    /** @return current element count (racy between calls). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    /** @return true when size() == capacity() (racy between calls). */
    bool
    full() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size() >= capacity_;
    }

    /**
     * Enqueues without blocking.
     * @return false when the queue is full or closed.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueues, blocking while the queue is full.
     * @return false when the queue is (or becomes) closed.
     */
    bool
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notFull_.wait(lock, [&] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeues the oldest element, blocking while empty.
     * @return false when the queue is closed *and* drained — the
     * consumer-side shutdown signal.
     */
    bool
    pop(T &out)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock,
                           [&] { return closed_ || !items_.empty(); });
            if (items_.empty())
                return false; // Closed and drained.
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return true;
    }

    /**
     * Dequeues without blocking.
     * @return false when the queue is empty.
     */
    bool
    tryPop(T &out)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (items_.empty())
                return false;
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return true;
    }

    /**
     * Closes the queue: pushes fail from now on; pops drain what is
     * left and then return false. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** @return true once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace tsp::serve

#endif // TSP_SERVE_REQUEST_QUEUE_HH
