/**
 * @file
 * InferenceServer: a multi-chip serving tier over the host runtime.
 *
 * One compiled Lowering is shared by a pool of worker threads, each
 * owning its own InferenceSession (one simulated chip). Requests
 * flow through a deadline-aware admission controller (exact, because
 * the schedule's cycle count is known before it runs — paper Eq. 4,
 * IV.F, V.c), then a bounded FIFO queue with backpressure, and are
 * executed by whichever worker frees up first. Per-request outcomes,
 * latency distributions and throughput are aggregated in
 * ServerMetrics and dumped as JSON.
 *
 * Batching: with batchMax > 1 (and a batch-capable backend), submit()
 * doubles as the batcher. The first admitted request *opens* a batch;
 * later arrivals within batchWindowSec of the leader try to *join* —
 * a join is committed only when the exact cycles(k+1) completion
 * still meets every member's deadline (AdmissionController::tryJoin),
 * so the batcher proves feasibility instead of gambling on a window.
 * A batch seals (moves to the queue) when it is full, when an arrival
 * falls outside the window or cannot feasibly join, or when drain()/
 * shutdown() flushes it. Batches are formed at admission time under
 * the submit lock, so the grouping is a deterministic function of the
 * (monotone) arrival stamps. A mid-batch machine check condemns the
 * engine and retries the *whole batch* under the usual retry/deadline
 * policy; per-sample outputs are only read from a completed run.
 *
 * Multi-model: constructed over a ModelRegistry, one server holds N
 * compiled families. submitModel() routes each request; batches are
 * single-family; each sealed job carries a registry-pinned program
 * its worker binds before running (weight swaps between families
 * cost exactly the modeled image re-stage, which admission booked).
 * Tenant SLO classes scale deadlines and rank priorities; with
 * preemption on, a higher-priority arrival that is infeasible behind
 * the open batch but feasible in its place takes the booking and the
 * open batch's members are re-admitted at once (shedding only the
 * provably infeasible ones). Only the *open* batch is preemptible —
 * it is pure admission state under the submit lock, so preemption
 * decisions replay deterministically; queued and running batches are
 * never revoked.
 *
 * Timeline note: all latencies are *virtual* chip time (seconds at
 * the configured clock). The host threads merely reproduce, slower,
 * a timeline whose every event was already fixed at admission — the
 * worker's measured cycle count is checked against the booking and
 * any divergence is surfaced as a prediction mismatch.
 */

#ifndef TSP_SERVE_SERVER_HH
#define TSP_SERVE_SERVER_HH

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/batch_program.hh"
#include "serve/admission.hh"
#include "serve/backend.hh"
#include "serve/metrics.hh"
#include "serve/model_registry.hh"
#include "serve/request.hh"
#include "serve/request_queue.hh"

namespace tsp::serve {

/**
 * One tenant service class: how much deadline slack its requests
 * get and how it ranks when bookings collide.
 */
struct SloClass
{
    /**
     * Scales the slack (deadline - arrival) of every request in the
     * class: effective = arrival + slack * deadlineMultiplier. > 1
     * relaxes (batch/bulk tenants), < 1 tightens (interactive
     * tenants), 1 passes the caller's deadline through.
     */
    double deadlineMultiplier = 1.0;

    /**
     * Preemption rank. With ServerConfig::preemption, an arrival
     * whose deadline is provably infeasible behind the *open* batch
     * but feasible in its place may preempt it iff its class
     * priority is strictly higher than the open batch's; the
     * preempted members are re-admitted immediately (never dropped),
     * shedding only those whose own deadlines became infeasible.
     */
    int priority = 0;
};

/** Serving-tier configuration. */
struct ServerConfig
{
    /** Worker threads == simulated chips (>= 1). */
    int workers = 2;

    /** Bounded request-queue capacity (backpressure point). */
    std::size_t queueCapacity = 64;

    /**
     * Per-run cycle budget safety net. A valid compiled program
     * always retires in exactly its predicted cycles; exhaustion is
     * surfaced as Outcome::Failed (see InferenceSession::runBounded).
     */
    Cycle maxCyclesPerRun = 500'000'000;

    /**
     * Start with the worker pool gated: requests queue up (and the
     * bounded queue exerts backpressure) until resume() is called.
     * Deterministic backpressure tests depend on this.
     */
    bool startPaused = false;

    /**
     * Re-runs allowed after a machine check (on a rebuilt chip with a
     * derived fault seed — see InferenceSession::reset). A retry is
     * taken only while every batch member's deadline still admits
     * another full service time; exhaustion yields FailedMachineCheck.
     */
    int maxRetries = 2;

    /**
     * Periodic engine-snapshot cadence in cycles (0 disables). With
     * migrateOnMachineCheck and 0 here, the server derives a default
     * of serviceCycles/8. See Backend::enableSnapshots().
     */
    Cycle snapshotEveryCycles = 0;

    /**
     * Recover a machine-checked batch by restoring its last pre-fault
     * snapshot onto a rebuilt engine and resuming (mid-batch
     * migration), instead of burning a full retry. Falls back to the
     * retry path when no clean snapshot precedes the first
     * uncorrectable error. Implies periodic snapshotting.
     */
    bool migrateOnMachineCheck = false;

    /**
     * Migration attempts permitted per batch (a resumed run can
     * machine-check again under sustained fault rates); exhaustion
     * falls back to the full-retry policy.
     */
    int maxMigrations = 8;

    /**
     * Largest batch submit() may form (clamped to what the admission
     * table and every backend support). 1 disables batching and the
     * server behaves exactly like the pre-batching tier.
     */
    int batchMax = 1;

    /**
     * How long (virtual seconds) after the batch leader's arrival a
     * later request may still join its open batch. 0 batches only
     * same-arrival-stamp requests. Sealing is driven by subsequent
     * submissions and drain(); there is no wall-clock timer (the
     * timeline is virtual), so call drain() to flush a trailing open
     * batch.
     */
    double batchWindowSec = 0.0;

    /**
     * Pinned dispatch: pin each sealed batch to the worker the admission
     * controller booked it on (per-worker FIFO queues) instead of
     * letting whichever worker frees up first take it. Throughput is
     * unchanged (the booking already assumes the assignment), but the
     * *physical* engine that executes each request becomes a pure
     * function of the admission history — so with fault injection
     * enabled, which request absorbs which upset replays identically
     * run after run. The fleet soak layer requires this; default off
     * preserves the legacy work-stealing behavior.
     */
    bool pinnedDispatch = false;

    /**
     * Called once for every resolved request (all outcomes), after
     * it is recorded in the server metrics. Invoked from worker
     * threads and from the submitting thread (admission rejections),
     * possibly concurrently; must be thread-safe and must not call
     * back into the server. Lets a fleet controller aggregate
     * time-series without paying one std::future per request.
     */
    std::function<void(const Result &)> onResult;

    /**
     * Byte budget of the pool-shared execution-trace cache (LRU,
     * see sim/exec_trace.hh). The first worker to run a compiled
     * program records its micro-op trace; every later serve of that
     * program — on any worker — replays it instead of re-simulating
     * per cycle, bit-identically. 0 disables the replay tier
     * entirely. Sessions self-gate when replay would be unsound
     * (fault injection, dispatch tracing, power tracing), so leaving
     * this on is always safe.
     */
    std::size_t traceCacheBytes = TraceCache::kDefaultBudget;

    /**
     * Tenant SLO classes, indexed by submitModel()'s slo_class.
     * Empty means one default class (multiplier 1, priority 0) —
     * the single-tenant behavior.
     */
    std::vector<SloClass> sloClasses;

    /**
     * Allow priority preemption of the open batch (see SloClass).
     * Off by default: with preemption disabled a multi-class server
     * behaves exactly like the priority-free tier (priorities only
     * rank, they never revoke).
     */
    bool preemption = false;

    /** Configuration applied to every worker's chip. */
    ChipConfig chip{};
};

/** Builds one worker's execution engine (chip or pod). */
using BackendFactory =
    std::function<std::unique_ptr<Backend>(int worker)>;

/** A pool of simulated TSP engines serving one compiled workload. */
class InferenceServer
{
  public:
    /** What submit() does when the bounded queue is full. */
    enum class OnFull : std::uint8_t {
        Reject, ///< Fail fast with Outcome::RejectedQueueFull.
        Block,  ///< Wait for a slot (open-loop generator backpressure).
    };

    /**
     * Builds one chip per worker and emplaces @p lw on each.
     *
     * @param lw the fully built compiled model; must outlive the
     *        server (sessions re-read its DMA image on reset).
     * @param input the model's lowered input tensor (request data is
     *        written here before each run).
     * @param output the lowered output tensor read back per request.
     */
    InferenceServer(Lowering &lw, LoweredTensor input,
                    LoweredTensor output, ServerConfig cfg = {});

    /**
     * Batch-capable form: every worker serves @p cache's compiled
     * batch programs and the admission controller books against the
     * exact cycles(b) table. @p cache must outlive the server.
     */
    explicit InferenceServer(BatchProgramCache &cache,
                             ServerConfig cfg = {});

    /**
     * Generic form: one Backend per worker from @p factory, with
     * @p service_cycles the exact per-request cycle count the
     * admission controller books against (e.g.
     * PodBackend::serviceCycles for a pod of chips).
     */
    InferenceServer(const BackendFactory &factory,
                    Cycle service_cycles, ServerConfig cfg = {});

    /**
     * Generic batch-capable form: @p cycles_by_batch[b-1] is the
     * exact cycle count of the batch-b program every backend from
     * @p factory can run (e.g. PodBackend::serviceCyclesTable).
     */
    InferenceServer(const BackendFactory &factory,
                    std::vector<Cycle> cycles_by_batch,
                    ServerConfig cfg = {});

    /**
     * Multi-model form: one server holds every family in
     * @p registry. Each worker starts staged with family 0; batch
     * jobs carry a registry-pinned program, weight swaps between
     * families are booked exactly into admission, and
     * submitModel() routes per request. With more than one family
     * pinned dispatch is forced on — the swap a booking pays for
     * must happen on the worker it was booked on. @p registry must
     * outlive the server.
     */
    explicit InferenceServer(ModelRegistry &registry,
                             ServerConfig cfg = {});

    /**
     * Multi-model form with operator-supplied backends (e.g. fault
     * plans seeded per worker). Every backend must support
     * bindProgram() — SessionBackend's (program, max_batch) ctor
     * does. @p registry must outlive the server.
     */
    InferenceServer(const BackendFactory &factory,
                    ModelRegistry &registry, ServerConfig cfg = {});

    /** Drains and joins the pool. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submits one request; never blocks on chip work (admission
     * rejections and queue-full rejections resolve the returned
     * future immediately; with OnFull::Block the call can wait for a
     * queue slot).
     *
     * @param input dense [h x w x c] int8 model input.
     * @param arrival_sec arrival stamp on the virtual timeline;
     *        submissions must be monotone for FIFO semantics to
     *        mirror the booking.
     * @param deadline_sec absolute virtual deadline; <= 0 for none.
     */
    std::future<Result> submit(std::vector<std::int8_t> input,
                               double arrival_sec,
                               double deadline_sec = 0.0,
                               OnFull on_full = OnFull::Reject);

    /**
     * submit() addressed to one model family and tenant class (see
     * ServerConfig::sloClasses). An unknown model or class resolves
     * as RejectedInvalid; submit() is submitModel(0, 0, ...).
     */
    std::future<Result> submitModel(int model, int slo_class,
                                    std::vector<std::int8_t> input,
                                    double arrival_sec,
                                    double deadline_sec = 0.0,
                                    OnFull on_full = OnFull::Reject);

    /**
     * submit() without the future: the request resolves through
     * ServerConfig::onResult (and the metrics) only. This is the
     * fleet soak path — a million-request run must not allocate a
     * million promise/future pairs it never reads.
     */
    void submitDetached(std::vector<std::int8_t> input,
                        double arrival_sec, double deadline_sec = 0.0,
                        OnFull on_full = OnFull::Reject);

    /** submitModel() without the future (fleet soak path). */
    void submitModelDetached(int model, int slo_class,
                             std::vector<std::int8_t> input,
                             double arrival_sec,
                             double deadline_sec = 0.0,
                             OnFull on_full = OnFull::Reject);

    /**
     * Seals and enqueues the open batch, if any, without draining.
     * The fleet controller calls this before snapshotting a pod's
     * booked backlog so a trailing open batch is not invisible to
     * the autoscaler.
     */
    void flushOpenBatch();

    /** @return sealed batches currently queued (all worker queues). */
    std::size_t queueDepth() const;

    /** Releases a startPaused pool (idempotent). */
    void resume();

    /** Flushes the open batch (if any) and blocks until every
     * submitted request has resolved. */
    void drain();

    /**
     * Closes the queue (rejecting any submitter still blocked on a
     * full queue — recorded like every other rejection), flushes the
     * open batch, drains and joins the workers. Called by the
     * destructor; subsequent submits reject. Idempotent.
     */
    void shutdown();

    /** @return exact cycles one batch-1 inference consumes. */
    Cycle serviceCycles() const { return admission_.serviceCycles(); }

    /** @return exact virtual seconds one batch-1 inference consumes. */
    double serviceSec() const { return admission_.serviceSec(); }

    /** @return pool width. */
    int workers() const { return cfg_.workers; }

    /** @return the effective batch cap (config clamped to the
     * admission table and every backend's maxBatch). */
    int batchMax() const { return effBatchMax_; }

    /** @return model families served (1 without a registry). */
    int models() const { return admission_.models(); }

    /** @return the registry backing this server (null without one). */
    const ModelRegistry *registry() const { return registry_; }

    /** @return the admission controller (booking state + counters). */
    const AdmissionController &admission() const { return admission_; }

    /** @return a consistent snapshot of the aggregated metrics. */
    ServerMetrics metricsSnapshot() const;

    /**
     * @return the full serving report (config, model, counters,
     * latency percentiles, throughput) as a JSON document.
     */
    std::string metricsJson() const;

    /**
     * @return total chip cycles consumed across the pool. Only
     * meaningful when idle (after drain()): proves rejected requests
     * cost zero cycles.
     */
    Cycle totalChipCycles() const;

    /** @return recorded traces resident in the shared cache. */
    std::size_t traceCacheSize() const
    {
        return traceCache_ ? traceCache_->size() : 0;
    }

    /** @return bytes those resident traces hold. */
    std::size_t traceCacheBytes() const
    {
        return traceCache_ ? traceCache_->memoryBytes() : 0;
    }

    /** @return pool-wide runs served by trace replay. */
    std::uint64_t replayCount() const;

    /** @return pool-wide runs that recorded a trace. */
    std::uint64_t recordCount() const;

  private:
    /** One request riding in a batch. */
    struct Member
    {
        Request req;
        /** Times this member's open batch was preempted so far. */
        std::uint32_t preemptions = 0;
        /** Unset for detached submissions (onResult-only). */
        std::optional<std::promise<Result>> promise;
    };

    /** One sealed batch: the queue's unit of work. */
    struct BatchJob
    {
        std::vector<Member> members;
        Admission booking; ///< Final sealed booking (whole batch).
        int model = 0;     ///< Model family the batch runs.
        int priority = 0;  ///< Highest member SLO priority.
        /** Registry-pinned compiled program (null in single-model
         * servers): safe against eviction while the job is queued
         * or running. */
        std::shared_ptr<BatchProgram> program;
    };

    /** Delegation target of every public constructor. */
    InferenceServer(const BackendFactory &factory, int models,
                    ModelTiming timing, ModelRegistry *registry,
                    ServerConfig cfg);

    void workerLoop(int w);
    std::future<Result>
    submitImpl(int model, int slo_class,
               std::vector<std::int8_t> input, double arrival_sec,
               double deadline_sec, OnFull on_full, bool want_future);
    std::future<Result> rejectNow(Request req, Outcome outcome,
                                  const Admission &booking,
                                  bool want_future);
    /** Preempts the open batch for @p req (feasibility already
     * proved), seals the preemptor, re-admits the victims (requires
     * submitMu_). */
    std::future<Result> preemptLocked(Request req, int priority,
                                      bool want_future);
    /** Re-admits one preempted member at virtual time @p now_sec,
     * growing/opening a victim batch or shedding it (requires
     * submitMu_). */
    void requeueVictimLocked(Member v, int vmodel, int vprio,
                             double now_sec, std::uint64_t &requeued,
                             std::uint64_t &shed);
    /** Resolves one member: metrics hook already ran; fires the
     * onResult callback, then the promise (if attached). */
    void resolveMember(Member &m, Result r);
    /** Seals + enqueues the open batch (requires submitMu_). */
    void sealOpenLocked();
    void finishBatch(BatchJob &job, std::vector<Result> results);
    /** @return the batch cap for @p model (config clamped to the
     * model's compiled sizes and every backend). */
    int effBatchMaxFor(int model) const;
    /** @return the queue feeding worker @p w's batches. */
    BoundedQueue<BatchJob> &queueFor(int w)
    {
        return *queues_[cfg_.pinnedDispatch
                            ? static_cast<std::size_t>(w)
                            : 0];
    }

    const ServerConfig cfg_;
    ModelRegistry *registry_ = nullptr; ///< Null in single-model mode.
    /** Effective SLO classes (cfg_.sloClasses or one default). */
    std::vector<SloClass> classes_;

    AdmissionController admission_;
    /** One shared queue, or one per worker under pinnedDispatch. */
    std::vector<std::unique_ptr<BoundedQueue<BatchJob>>> queues_;

    std::vector<std::unique_ptr<Backend>> backends_;
    std::shared_ptr<TraceCache> traceCache_; ///< Null when disabled.
    std::vector<std::thread> threads_;
    int effBatchMax_ = 1;
    int backendBatchCap_ = 1; ///< Min maxBatch() over the backends.
    /** Bytes a valid input must have (0 = backend can't say). */
    std::size_t expectedInput_ = 0;

    std::mutex submitMu_; ///< Serializes admission + batching + enqueue.
    /** Open-batch accumulator (guarded by submitMu_). */
    std::vector<Member> openMembers_;
    double openLeaderArrival_ = 0.0;
    int openModel_ = 0;    ///< Open batch's family (submitMu_).
    int openPriority_ = 0; ///< Highest member priority (submitMu_).

    std::mutex pauseMu_;
    std::condition_variable pauseCv_;
    bool paused_;

    mutable std::mutex doneMu_; ///< Guards inflight_ and metrics_.
    std::condition_variable doneCv_;
    std::uint64_t inflight_ = 0;
    ServerMetrics metrics_;

    std::atomic<RequestId> nextId_{1};
    bool shutdown_ = false; ///< Guarded by submitMu_.
};

} // namespace tsp::serve

#endif // TSP_SERVE_SERVER_HH
