/**
 * @file
 * The serving layer's execution-engine abstraction.
 *
 * A worker thread doesn't care what is behind a request: one chip
 * running a compiled model (SessionBackend) or an N-chip pod running
 * a statically scheduled collective (PodBackend). Both expose the
 * same deterministic contract the admission controller relies on —
 * a completed run always consumes exactly the same cycle count —
 * plus the reliability surface (reset-rebuilds, machine-check and
 * corrected-error counters) the retry policy drives.
 *
 * The interface is batch-native: resetBatch(b) arms the engine's
 * compiled batch-b program, writeSample/readSample stage and extract
 * per-sample data, and serveBatch() is the one-shot convenience the
 * worker loop uses. maxBatch() == 1 backends (the default) are plain
 * single-request engines; the legacy reset()/writeInput()/
 * readOutput() wrappers are batch-1 shorthands.
 */

#ifndef TSP_SERVE_BACKEND_HH
#define TSP_SERVE_BACKEND_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "compiler/lowering.hh"
#include "graph/batch_program.hh"
#include "ref/qnn.hh"
#include "runtime/pod_session.hh"
#include "runtime/session.hh"

namespace tsp::serve {

/** One worker's execution engine (a chip or a pod of chips). */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** @return largest batch this engine has a compiled program for. */
    virtual int maxBatch() const { return 1; }

    /**
     * @return exact bytes one sample's dense input must have, or 0
     * when the engine does not know (no validation possible). The
     * server rejects mis-sized requests as RejectedInvalid before
     * admission instead of faulting inside a worker thread.
     */
    virtual std::size_t expectedInputBytes() const { return 0; }

    /**
     * Rearms for the next run of the compiled batch-@p batch program
     * (1 <= batch <= maxBatch()): reloads programs and rebuilds the
     * engine when the previous run timed out or machine checked
     * (with a derived fault seed — retries must not replay the
     * identical environmental upset).
     */
    virtual void resetBatch(int batch) = 0;

    /** Stages sample @p sample's dense int8 input (after
     * resetBatch(); 0 <= sample < batch). */
    virtual void writeSample(int sample,
                             const std::vector<std::int8_t> &input) = 0;

    /** Runs for at most @p max_cycles relative to the engine clock. */
    virtual RunResult runBounded(Cycle max_cycles) = 0;

    /** Reads sample @p sample's result (after a completed run). */
    virtual ref::QTensor readSample(int sample) const = 0;

    /**
     * @return cumulative single-bit corrections on the *current*
     * engine (resets to zero when resetBatch() rebuilds it — sample
     * before/after one run, never across a reset).
     */
    virtual std::uint64_t correctedErrors() const = 0;

    /** @return cumulative uncorrectable raises on the current engine. */
    virtual std::uint64_t machineCheckCount() const = 0;

    /** @return total chip cycles consumed (summed over members). */
    virtual Cycle totalCycles() const = 0;

    /** @return engines rebuilt after timeouts/machine checks. */
    virtual int rebuilds() const = 0;

    /**
     * Attaches a pool-shared execution-trace cache and enables the
     * record/replay tier (see sim/exec_trace.hh): the first worker to
     * run a compiled program records it, every worker replays it.
     * Default: no-op (engine without replay support).
     */
    virtual void attachTraceCache(std::shared_ptr<TraceCache>) {}

    /** @return runs served by replaying a recorded trace. */
    virtual std::uint64_t replayCount() const { return 0; }

    /** @return runs that recorded a trace. */
    virtual std::uint64_t recordCount() const { return 0; }

    // --- Snapshot-based mid-batch migration (optional) ---

    /**
     * Arms periodic engine snapshotting with cadence @p every cycles
     * (0 disables); see InferenceSession::enableSnapshots(). Default:
     * no-op (engine without snapshot support).
     */
    virtual void enableSnapshots(Cycle /*every*/) {}

    /**
     * @return true when a clean pre-fault snapshot of the current
     * batch exists, i.e. migrateAndResume() can recover it without a
     * full retry.
     */
    virtual bool canMigrate() const { return false; }

    /**
     * Machine-check recovery: rebuilds the engine, restores the last
     * pre-fault snapshot and resumes the batch for at most
     * @p max_cycles more. Only meaningful after canMigrate().
     */
    virtual RunResult
    migrateAndResume(Cycle /*max_cycles*/)
    {
        return {false, RunStatus::MachineCheck, 0};
    }

    /** @return batches recovered via migration. */
    virtual int migrations() const { return 0; }

    /**
     * @return modeled host-side seconds to rebuild this engine and
     * restage its image before a retry or migration resume (the DMA
     * re-transfer for a chip; 0 when restaging is free). The retry
     * policy books this on top of the recompute time.
     */
    virtual double rebuildPenaltySec() const { return 0.0; }

    /**
     * Arms a registry-pinned compiled program (multi-model pools):
     * the worker loop hands each batch job's program — possibly a
     * different model family than the previous job — to the engine
     * before resetBatch(). Re-binding a different program re-stages
     * the engine image (the admission controller booked that swap).
     * Default: unsupported.
     */
    virtual void bindProgram(std::shared_ptr<BatchProgram> /*bp*/)
    {
        TSP_ASSERT(!"backend does not support program binding");
    }

    // Batch-1 shorthands (legacy call sites and simple clients).
    void reset() { resetBatch(1); }
    void writeInput(const std::vector<std::int8_t> &input)
    {
        writeSample(0, input);
    }
    ref::QTensor readOutput() const { return readSample(0); }

    /**
     * One attempt at a whole batch: rearms the batch-|inputs|
     * program, stages every sample, runs. Outputs (readSample) are
     * only meaningful when the returned run completed.
     */
    RunResult serveBatch(
        const std::vector<const std::vector<std::int8_t> *> &inputs,
        Cycle max_cycles);
};

/**
 * A single-chip backend over one compiled model, optionally with a
 * BatchProgramCache enabling multi-sample programs (weights installed
 * once per batch, per-sample activations — see graph/batch_program).
 */
class SessionBackend final : public Backend
{
  public:
    /** @param lw must outlive the backend (image re-read on reset). */
    SessionBackend(Lowering &lw, LoweredTensor input,
                   LoweredTensor output, ChipConfig cfg);

    /** Batch-capable: @p cache must outlive the backend. */
    SessionBackend(BatchProgramCache &cache, ChipConfig cfg);

    /**
     * Multi-model form: starts bound to @p initial (pinned by the
     * shared_ptr, so registry eviction cannot invalidate it) and
     * re-binds whatever program each batch job carries via
     * bindProgram(). @p max_batch is the largest batch any family
     * compiles (per-family caps are enforced at admission).
     */
    SessionBackend(std::shared_ptr<BatchProgram> initial,
                   int max_batch, ChipConfig cfg);

    int maxBatch() const override;
    std::size_t expectedInputBytes() const override;
    void resetBatch(int batch) override;
    void writeSample(int sample,
                     const std::vector<std::int8_t> &input) override;
    RunResult runBounded(Cycle max_cycles) override;
    ref::QTensor readSample(int sample) const override;
    std::uint64_t correctedErrors() const override;
    std::uint64_t machineCheckCount() const override;
    Cycle totalCycles() const override;
    int rebuilds() const override { return sess_.rebuilds(); }
    void attachTraceCache(std::shared_ptr<TraceCache> t) override;
    std::uint64_t replayCount() const override
    {
        return sess_.replayCount();
    }
    std::uint64_t recordCount() const override
    {
        return sess_.recordCount();
    }
    void enableSnapshots(Cycle every) override
    {
        sess_.enableSnapshots(every);
    }
    bool canMigrate() const override
    {
        return sess_.lastSnapshot() != nullptr;
    }
    RunResult migrateAndResume(Cycle max_cycles) override
    {
        return sess_.migrateAndResume(max_cycles);
    }
    int migrations() const override { return sess_.migrations(); }
    double rebuildPenaltySec() const override
    {
        return sess_.dmaSeconds();
    }
    void bindProgram(std::shared_ptr<BatchProgram> bp) override;

    /** @return the underlying session (tests). */
    InferenceSession &session() { return sess_; }

  private:
    LoweredTensor inputSlot_;
    LoweredTensor outputSlot_;
    BatchProgramCache *cache_ = nullptr;
    /** Pinned program currently armed (batch-cache and multi-model
     * modes); null in single-Lowering mode. */
    std::shared_ptr<BatchProgram> boundBp_;
    int maxBatch_ = 1; ///< Multi-model mode's global batch cap.
    int bound_ = 1;    ///< Batch size the session is bound to.
    InferenceSession sess_;
    std::shared_ptr<TraceCache> traces_;
    /**
     * Cache key for the currently bound program. Batch-cache backends
     * key by the cache's shared AsmProgram (one entry per batch size,
     * shared by every worker over the same BatchProgramCache);
     * Lowering-backed backends key by the Lowering, which every
     * worker of a pool shares even though each session compiled its
     * own (identical) program copy.
     */
    TraceKey traceKey() const;
    const Lowering *lwKey_ = nullptr;
};

/**
 * An N-chip ring-pod backend serving the int8 ring all-reduce
 * collective: each sample's input is the concatenation of every
 * member's 320-byte local vector, the output is the saturating
 * elementwise sum, read from chip 0. With max_batch > 1 the pod
 * holds one compiled batched collective per batch size (samples
 * pipelined around the ring — see c2c/collective.hh).
 */
class PodBackend final : public Backend
{
  public:
    PodBackend(int chips, Cycle wire_latency, ChipConfig cfg,
               int max_batch = 1);

    /**
     * @return the exact cycle count of one all-reduce on an
     * equivalent pod, measured on a fault-free calibration pod (the
     * timing of a deterministic schedule is independent of fault
     * injection, which only flips data bits). This is what the
     * admission controller books against.
     */
    static Cycle serviceCycles(int chips, Cycle wire_latency,
                               ChipConfig cfg);

    /**
     * @return exact cycles(b) for b = 1..max_batch, each measured on
     * a fault-free calibration pod.
     */
    static std::vector<Cycle> serviceCyclesTable(int chips,
                                                 Cycle wire_latency,
                                                 ChipConfig cfg,
                                                 int max_batch);

    /** @return bytes one sample's input must have (chips * 320). */
    static std::size_t inputBytes(int chips);

    int maxBatch() const override;
    std::size_t expectedInputBytes() const override;
    void resetBatch(int batch) override;
    void writeSample(int sample,
                     const std::vector<std::int8_t> &input) override;
    RunResult runBounded(Cycle max_cycles) override;
    ref::QTensor readSample(int sample) const override;
    std::uint64_t correctedErrors() const override;
    std::uint64_t machineCheckCount() const override;
    Cycle totalCycles() const override;
    int rebuilds() const override { return sess_.rebuilds(); }
    void attachTraceCache(std::shared_ptr<TraceCache> t) override;
    std::uint64_t replayCount() const override
    {
        return sess_.replayCount();
    }
    std::uint64_t recordCount() const override
    {
        return sess_.recordCount();
    }
    void enableSnapshots(Cycle every) override
    {
        sess_.enableSnapshots(every);
    }
    bool canMigrate() const override
    {
        return sess_.lastSnapshot() != nullptr;
    }
    RunResult migrateAndResume(Cycle max_cycles) override
    {
        return sess_.migrateAndResume(max_cycles);
    }
    int migrations() const override { return sess_.migrations(); }
    // Pod inputs are backdoor-staged; rebuilds carry no modeled DMA.

    /** @return the underlying pod session (tests). */
    PodSession &session() { return sess_; }

  private:
    PodSession sess_;
    /** progs_[b-1]: the compiled batch-b collective. */
    std::vector<std::vector<AsmProgram>> progs_;
    /** progHashes_[b-1]: content fingerprint for the trace key. */
    std::vector<std::uint64_t> progHashes_;
    int bound_ = 1; ///< Batch size currently loaded.
    std::shared_ptr<TraceCache> traces_;
};

} // namespace tsp::serve

#endif // TSP_SERVE_BACKEND_HH
