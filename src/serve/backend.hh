/**
 * @file
 * The serving layer's execution-engine abstraction.
 *
 * A worker thread doesn't care what is behind a request: one chip
 * running a compiled model (SessionBackend) or an N-chip pod running
 * a statically scheduled collective (PodBackend). Both expose the
 * same deterministic contract the admission controller relies on —
 * a completed run always consumes exactly the same cycle count —
 * plus the reliability surface (reset-rebuilds, machine-check and
 * corrected-error counters) the retry policy drives.
 */

#ifndef TSP_SERVE_BACKEND_HH
#define TSP_SERVE_BACKEND_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "compiler/lowering.hh"
#include "ref/qnn.hh"
#include "runtime/pod_session.hh"
#include "runtime/session.hh"

namespace tsp::serve {

/** One worker's execution engine (a chip or a pod of chips). */
class Backend
{
  public:
    virtual ~Backend() = default;

    /**
     * Rearms for the next request: reloads programs and rebuilds the
     * engine when the previous run timed out or machine checked
     * (with a derived fault seed — retries must not replay the
     * identical environmental upset).
     */
    virtual void reset() = 0;

    /** Stages one request's dense int8 input (after reset()). */
    virtual void writeInput(const std::vector<std::int8_t> &input) = 0;

    /** Runs for at most @p max_cycles relative to the engine clock. */
    virtual RunResult runBounded(Cycle max_cycles) = 0;

    /** Reads the result (only after a completed run). */
    virtual ref::QTensor readOutput() const = 0;

    /**
     * @return cumulative single-bit corrections on the *current*
     * engine (resets to zero when reset() rebuilds it — sample
     * before/after one run, never across a reset()).
     */
    virtual std::uint64_t correctedErrors() const = 0;

    /** @return cumulative uncorrectable raises on the current engine. */
    virtual std::uint64_t machineCheckCount() const = 0;

    /** @return total chip cycles consumed (summed over members). */
    virtual Cycle totalCycles() const = 0;

    /** @return engines rebuilt after timeouts/machine checks. */
    virtual int rebuilds() const = 0;
};

/** A single-chip backend over one compiled model. */
class SessionBackend final : public Backend
{
  public:
    /** @param lw must outlive the backend (image re-read on reset). */
    SessionBackend(Lowering &lw, LoweredTensor input,
                   LoweredTensor output, ChipConfig cfg);

    void reset() override { sess_.reset(); }
    void writeInput(const std::vector<std::int8_t> &input) override;
    RunResult runBounded(Cycle max_cycles) override;
    ref::QTensor readOutput() const override;
    std::uint64_t correctedErrors() const override;
    std::uint64_t machineCheckCount() const override;
    Cycle totalCycles() const override;
    int rebuilds() const override { return sess_.rebuilds(); }

    /** @return the underlying session (tests). */
    InferenceSession &session() { return sess_; }

  private:
    LoweredTensor inputSlot_;
    LoweredTensor outputSlot_;
    InferenceSession sess_;
};

/**
 * An N-chip ring-pod backend serving the int8 ring all-reduce
 * collective: the request input is the concatenation of every
 * member's 320-byte local vector, the output is the saturating
 * elementwise sum, read from chip 0.
 */
class PodBackend final : public Backend
{
  public:
    PodBackend(int chips, Cycle wire_latency, ChipConfig cfg);

    /**
     * @return the exact cycle count of one all-reduce on an
     * equivalent pod, measured on a fault-free calibration pod (the
     * timing of a deterministic schedule is independent of fault
     * injection, which only flips data bits). This is what the
     * admission controller books against.
     */
    static Cycle serviceCycles(int chips, Cycle wire_latency,
                               ChipConfig cfg);

    /** @return bytes one request's input must have (chips * 320). */
    static std::size_t inputBytes(int chips);

    void reset() override { sess_.reset(); }
    void writeInput(const std::vector<std::int8_t> &input) override;
    RunResult runBounded(Cycle max_cycles) override;
    ref::QTensor readOutput() const override;
    std::uint64_t correctedErrors() const override;
    std::uint64_t machineCheckCount() const override;
    Cycle totalCycles() const override;
    int rebuilds() const override { return sess_.rebuilds(); }

    /** @return the underlying pod session (tests). */
    PodSession &session() { return sess_; }

  private:
    PodSession sess_;
};

} // namespace tsp::serve

#endif // TSP_SERVE_BACKEND_HH
