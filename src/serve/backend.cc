#include "serve/backend.hh"

#include "c2c/collective.hh"
#include "common/logging.hh"

namespace tsp::serve {

SessionBackend::SessionBackend(Lowering &lw, LoweredTensor input,
                               LoweredTensor output, ChipConfig cfg)
    : inputSlot_(std::move(input)), outputSlot_(std::move(output)),
      sess_(lw, cfg)
{
}

void
SessionBackend::writeInput(const std::vector<std::int8_t> &input)
{
    sess_.writeTensor(inputSlot_, input);
}

RunResult
SessionBackend::runBounded(Cycle max_cycles)
{
    return sess_.runBounded(max_cycles);
}

ref::QTensor
SessionBackend::readOutput() const
{
    return sess_.readTensor(outputSlot_);
}

std::uint64_t
SessionBackend::correctedErrors() const
{
    return sess_.chip().stats().get("ecc_corrected");
}

std::uint64_t
SessionBackend::machineCheckCount() const
{
    return sess_.chip().machineCheckCount();
}

Cycle
SessionBackend::totalCycles() const
{
    return sess_.chip().now();
}

namespace {

std::vector<AsmProgram>
allReducePrograms(const Pod &pod)
{
    std::vector<ScheduledProgram> sched;
    buildRingAllReduce(pod, sched);
    std::vector<AsmProgram> progs;
    progs.reserve(sched.size());
    for (auto &p : sched)
        progs.push_back(p.toAsm());
    return progs;
}

} // namespace

PodBackend::PodBackend(int chips, Cycle wire_latency, ChipConfig cfg)
    : sess_(chips, wire_latency, cfg)
{
    sess_.loadPrograms(allReducePrograms(sess_.pod()));
}

Cycle
PodBackend::serviceCycles(int chips, Cycle wire_latency,
                          ChipConfig cfg)
{
    // A static schedule's cycle count is input- and fault-independent
    // (injection flips data bits, never timing), so one fault-free
    // calibration run is the exact booking for every future request.
    cfg.fault = FaultConfig{};
    PodSession calib(chips, wire_latency, cfg);
    calib.loadPrograms(allReducePrograms(calib.pod()));
    const RunResult r = calib.runBounded();
    TSP_ASSERT(r.completed);
    return r.cycles;
}

std::size_t
PodBackend::inputBytes(int chips)
{
    return static_cast<std::size_t>(chips) *
           static_cast<std::size_t>(kLanes);
}

void
PodBackend::writeInput(const std::vector<std::int8_t> &input)
{
    const int n = sess_.pod().size();
    TSP_ASSERT(input.size() == inputBytes(n));
    Vec320 v;
    for (int c = 0; c < n; ++c) {
        for (int i = 0; i < kLanes; ++i) {
            v.bytes[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(
                    input[static_cast<std::size_t>(c) * kLanes +
                          static_cast<std::size_t>(i)]);
        }
        sess_.writeWord(c, Hemisphere::East, AllReducePlan::kSlice,
                        AllReducePlan::kLocalAddr, v);
    }
}

RunResult
PodBackend::runBounded(Cycle max_cycles)
{
    return sess_.runBounded(max_cycles);
}

ref::QTensor
PodBackend::readOutput() const
{
    // Every member holds the reduced vector after the broadcast;
    // chip 0 is the designated reader.
    const Vec320 v =
        sess_.readWord(0, Hemisphere::East, AllReducePlan::kSlice,
                       AllReducePlan::kResultAddr);
    ref::QTensor out(1, 1, kLanes);
    for (int i = 0; i < kLanes; ++i)
        out.at(0, 0, i) = static_cast<std::int8_t>(
            v.bytes[static_cast<std::size_t>(i)]);
    return out;
}

std::uint64_t
PodBackend::correctedErrors() const
{
    return sess_.stats().get("ecc_corrected");
}

std::uint64_t
PodBackend::machineCheckCount() const
{
    std::uint64_t n = 0;
    const Pod &pod = sess_.pod();
    for (int c = 0; c < pod.size(); ++c)
        n += pod.chip(c).machineCheckCount();
    return n;
}

Cycle
PodBackend::totalCycles() const
{
    Cycle total = 0;
    const Pod &pod = sess_.pod();
    for (int c = 0; c < pod.size(); ++c)
        total += pod.chip(c).now();
    return total;
}

} // namespace tsp::serve
