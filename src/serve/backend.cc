#include "serve/backend.hh"

#include "c2c/collective.hh"
#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace tsp::serve {

RunResult
Backend::serveBatch(
    const std::vector<const std::vector<std::int8_t> *> &inputs,
    Cycle max_cycles)
{
    const int b = static_cast<int>(inputs.size());
    TSP_ASSERT(b >= 1 && b <= maxBatch());
    resetBatch(b);
    for (int s = 0; s < b; ++s)
        writeSample(s, *inputs[static_cast<std::size_t>(s)]);
    return runBounded(max_cycles);
}

SessionBackend::SessionBackend(Lowering &lw, LoweredTensor input,
                               LoweredTensor output, ChipConfig cfg)
    : inputSlot_(std::move(input)), outputSlot_(std::move(output)),
      sess_(lw, cfg), lwKey_(&lw)
{
}

SessionBackend::SessionBackend(BatchProgramCache &cache,
                               ChipConfig cfg)
    : cache_(&cache), boundBp_(cache.acquire(1)),
      sess_(*boundBp_->lw, boundBp_->prog, cfg)
{
    inputSlot_ = boundBp_->inputs[0];
    outputSlot_ = boundBp_->outputs[0];
}

SessionBackend::SessionBackend(std::shared_ptr<BatchProgram> initial,
                               int max_batch, ChipConfig cfg)
    : boundBp_(std::move(initial)), maxBatch_(max_batch),
      sess_(*boundBp_->lw, boundBp_->prog, cfg)
{
    TSP_ASSERT(boundBp_ != nullptr);
    TSP_ASSERT(max_batch >= 1);
    inputSlot_ = boundBp_->inputs[0];
    outputSlot_ = boundBp_->outputs[0];
    bound_ = boundBp_->batch;
}

int
SessionBackend::maxBatch() const
{
    return cache_ ? cache_->maxBatch() : maxBatch_;
}

void
SessionBackend::bindProgram(std::shared_ptr<BatchProgram> bp)
{
    TSP_ASSERT(bp != nullptr);
    if (boundBp_ == bp)
        return;
    // A different program object: another model family, another
    // batch size, or a recompile after registry eviction. The
    // session re-stages the new image (the weight swap the booking
    // already paid for).
    boundBp_ = std::move(bp);
    inputSlot_ = boundBp_->inputs[0];
    outputSlot_ = boundBp_->outputs[0];
    sess_.bind(*boundBp_->lw, boundBp_->prog);
    bound_ = boundBp_->batch;
}

std::size_t
SessionBackend::expectedInputBytes() const
{
    const ActTensor &t = inputSlot_.t;
    return static_cast<std::size_t>(t.height) *
           static_cast<std::size_t>(t.width) *
           static_cast<std::size_t>(t.channels);
}

void
SessionBackend::resetBatch(int batch)
{
    TSP_ASSERT(batch >= 1 && batch <= maxBatch());
    if (cache_ && batch != bound_) {
        boundBp_ = cache_->acquire(batch);
        sess_.bind(*boundBp_->lw, boundBp_->prog);
        bound_ = batch;
    }
    // Multi-model mode: the worker loop bindProgram()s the job's
    // pinned program first, so the armed batch size must already
    // match here.
    TSP_ASSERT(cache_ || !boundBp_ || bound_ == batch);
    sess_.reset();
}

void
SessionBackend::writeSample(int sample,
                            const std::vector<std::int8_t> &input)
{
    if (boundBp_) {
        sess_.writeTensor(
            boundBp_->inputs[static_cast<std::size_t>(sample)],
            input);
        return;
    }
    TSP_ASSERT(sample == 0);
    sess_.writeTensor(inputSlot_, input);
}

void
SessionBackend::attachTraceCache(std::shared_ptr<TraceCache> t)
{
    traces_ = std::move(t);
    sess_.enableReplay(traces_ != nullptr);
}

TraceKey
SessionBackend::traceKey() const
{
    // Pointer identity alone would be an ABA hazard (a retired
    // program's address can be reused by a different one); the chip's
    // cached program content hash disambiguates.
    const void *ptr = boundBp_
                          ? static_cast<const void *>(sess_.program())
                          : static_cast<const void *>(lwKey_);
    return {ptr, sess_.chip().programHash()};
}

RunResult
SessionBackend::runBounded(Cycle max_cycles)
{
    if (!traces_)
        return sess_.runBounded(max_cycles);
    // Seed the session from the pool cache (another worker may have
    // recorded this program already); publish a fresh recording back.
    const TraceKey key = traceKey();
    if (!sess_.trace())
        sess_.setTrace(traces_->find(key));
    const bool had = sess_.trace() != nullptr;
    const RunResult r = sess_.runBounded(max_cycles);
    if (!had && sess_.trace())
        traces_->insert(key, sess_.trace());
    return r;
}

ref::QTensor
SessionBackend::readSample(int sample) const
{
    if (boundBp_) {
        return sess_.readTensor(
            boundBp_->outputs[static_cast<std::size_t>(sample)]);
    }
    TSP_ASSERT(sample == 0);
    return sess_.readTensor(outputSlot_);
}

std::uint64_t
SessionBackend::correctedErrors() const
{
    return sess_.chip().stats().get("ecc_corrected");
}

std::uint64_t
SessionBackend::machineCheckCount() const
{
    return sess_.chip().machineCheckCount();
}

Cycle
SessionBackend::totalCycles() const
{
    // Lifetime accounting: the current chip's clock alone forgets
    // cycles burned on engines condemned and rebuilt along the way.
    return sess_.totalCycles();
}

namespace {

std::vector<AsmProgram>
allReducePrograms(const Pod &pod, int batch)
{
    std::vector<ScheduledProgram> sched;
    buildRingAllReduce(pod, sched, batch);
    std::vector<AsmProgram> progs;
    progs.reserve(sched.size());
    for (auto &p : sched)
        progs.push_back(p.toAsm());
    return progs;
}

} // namespace

PodBackend::PodBackend(int chips, Cycle wire_latency, ChipConfig cfg,
                       int max_batch)
    : sess_(chips, wire_latency, cfg)
{
    TSP_ASSERT(max_batch >= 1 &&
               max_batch <= AllReducePlan::kMaxBatch);
    progs_.reserve(static_cast<std::size_t>(max_batch));
    progHashes_.reserve(static_cast<std::size_t>(max_batch));
    for (int b = 1; b <= max_batch; ++b) {
        progs_.push_back(allReducePrograms(sess_.pod(), b));
        std::uint64_t h = 0;
        for (const AsmProgram &p : progs_.back())
            h ^= hashProgram(p) + 0x9e3779b97f4a7c15ull + (h << 6) +
                 (h >> 2);
        progHashes_.push_back(h);
    }
    sess_.loadPrograms(progs_[0]);
}

Cycle
PodBackend::serviceCycles(int chips, Cycle wire_latency,
                          ChipConfig cfg)
{
    return serviceCyclesTable(chips, wire_latency, cfg, 1)[0];
}

std::vector<Cycle>
PodBackend::serviceCyclesTable(int chips, Cycle wire_latency,
                               ChipConfig cfg, int max_batch)
{
    // A static schedule's cycle count is input- and fault-independent
    // (injection flips data bits, never timing), so one fault-free
    // calibration run per batch size is the exact booking for every
    // future request.
    cfg.fault = FaultConfig{};
    std::vector<Cycle> table;
    table.reserve(static_cast<std::size_t>(max_batch));
    for (int b = 1; b <= max_batch; ++b) {
        PodSession calib(chips, wire_latency, cfg);
        calib.loadPrograms(allReducePrograms(calib.pod(), b));
        const RunResult r = calib.runBounded();
        TSP_ASSERT(r.completed);
        table.push_back(r.cycles);
    }
    return table;
}

std::size_t
PodBackend::inputBytes(int chips)
{
    return static_cast<std::size_t>(chips) *
           static_cast<std::size_t>(kLanes);
}

int
PodBackend::maxBatch() const
{
    return static_cast<int>(progs_.size());
}

std::size_t
PodBackend::expectedInputBytes() const
{
    return inputBytes(sess_.pod().size());
}

void
PodBackend::resetBatch(int batch)
{
    TSP_ASSERT(batch >= 1 && batch <= maxBatch());
    // reset() first: it rebuilds a condemned/timed-out pod (derived
    // fault seeds) before any program swap touches the members.
    sess_.reset();
    if (batch != bound_) {
        sess_.loadPrograms(progs_[static_cast<std::size_t>(
            batch - 1)]);
        bound_ = batch;
    }
}

void
PodBackend::writeSample(int sample,
                        const std::vector<std::int8_t> &input)
{
    const int n = sess_.pod().size();
    TSP_ASSERT(input.size() == inputBytes(n));
    Vec320 v;
    for (int c = 0; c < n; ++c) {
        for (int i = 0; i < kLanes; ++i) {
            v.bytes[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(
                    input[static_cast<std::size_t>(c) * kLanes +
                          static_cast<std::size_t>(i)]);
        }
        sess_.writeWord(c, Hemisphere::East, AllReducePlan::kSlice,
                        AllReducePlan::kLocalAddr +
                            static_cast<MemAddr>(sample),
                        v);
    }
}

void
PodBackend::attachTraceCache(std::shared_ptr<TraceCache> t)
{
    traces_ = std::move(t);
    sess_.enableReplay(traces_ != nullptr);
}

RunResult
PodBackend::runBounded(Cycle max_cycles)
{
    if (!traces_)
        return sess_.runBounded(max_cycles);
    // Keyed by this backend's compiled batch-b collective: the trace
    // survives batch switches (loadPrograms drops the session's own
    // copy) and LRU-competes with every other program in the pool.
    // Content-fingerprinted against pointer reuse (ABA).
    const std::size_t bi = static_cast<std::size_t>(bound_ - 1);
    const TraceKey key(&progs_[bi], progHashes_[bi]);
    if (!sess_.trace())
        sess_.setTrace(traces_->find(key));
    const bool had = sess_.trace() != nullptr;
    const RunResult r = sess_.runBounded(max_cycles);
    if (!had && sess_.trace())
        traces_->insert(key, sess_.trace());
    return r;
}

ref::QTensor
PodBackend::readSample(int sample) const
{
    // Every member holds the reduced vector after the broadcast;
    // chip 0 is the designated reader.
    const Vec320 v =
        sess_.readWord(0, Hemisphere::East, AllReducePlan::kSlice,
                       AllReducePlan::kResultAddr +
                           static_cast<MemAddr>(sample));
    ref::QTensor out(1, 1, kLanes);
    for (int i = 0; i < kLanes; ++i)
        out.at(0, 0, i) = static_cast<std::int8_t>(
            v.bytes[static_cast<std::size_t>(i)]);
    return out;
}

std::uint64_t
PodBackend::correctedErrors() const
{
    return sess_.stats().get("ecc_corrected");
}

std::uint64_t
PodBackend::machineCheckCount() const
{
    std::uint64_t n = 0;
    const Pod &pod = sess_.pod();
    for (int c = 0; c < pod.size(); ++c)
        n += pod.chip(c).machineCheckCount();
    return n;
}

Cycle
PodBackend::totalCycles() const
{
    // Lifetime accounting across rebuilds, as in SessionBackend.
    return sess_.totalCycles();
}

} // namespace tsp::serve
