/**
 * @file
 * Host runtime: owns a chip instance, emplaces the model via the DMA
 * manifest, loads the scheduled program (with its barrier preamble),
 * runs it to completion, and reads result tensors back — the host
 * interface duties of the paper's C2C/PCIe module (II item 6).
 *
 * Sessions are *reusable*: reset() reloads the program and re-applies
 * the DMA image so the same chip serves inference after inference, and
 * writeTensor() substitutes a fresh input between runs. Because the
 * schedule is static, every run of the same compiled model consumes
 * exactly the same number of cycles regardless of input values — the
 * property the serving layer's admission control (src/serve) is built
 * on.
 */

#ifndef TSP_RUNTIME_SESSION_HH
#define TSP_RUNTIME_SESSION_HH

#include <memory>

#include "compiler/lowering.hh"
#include "ref/qnn.hh"
#include "sim/chip.hh"
#include "sim/snapshot.hh"

namespace tsp {

/** Usable PCIe Gen4 x16 bandwidth for the DMA-time model (bytes/s). */
inline constexpr double kPcieGen4Bps = 32.0e9;

/** How one bounded run ended. */
enum class RunStatus : std::uint8_t
{
    Completed,    ///< Program retired within the cycle budget.
    CycleLimit,   ///< Budget exhausted mid-program.
    MachineCheck, ///< Uncorrectable error condemned the chip.
};

/** @return stable lower-case name for @p s. */
const char *runStatusName(RunStatus s);

/** Outcome of one bounded run. */
struct RunResult
{
    /** True when the program retired within the cycle budget. */
    bool completed = false;

    /** Why the run ended. */
    RunStatus status = RunStatus::Completed;

    /** Cycles consumed by this run (meaningless when !completed). */
    Cycle cycles = 0;
};

/** One compiled model bound to one chip. */
class InferenceSession
{
  public:
    /**
     * Builds the chip, applies @p lw's DMA image and loads its
     * program. The Lowering must be fully built (all layers added)
     * and must outlive the session (reset() re-reads its image).
     */
    explicit InferenceSession(Lowering &lw, ChipConfig cfg = {});

    /**
     * Same, but with a pre-assembled (shared) program — avoids
     * re-running toAsm() when many sessions serve one compiled
     * lowering, e.g. a worker pool over a BatchProgramCache.
     */
    InferenceSession(Lowering &lw,
                     std::shared_ptr<const AsmProgram> prog,
                     ChipConfig cfg = {});

    /**
     * Rebinds the session to another compiled lowering (typically a
     * different batch size of the same model) without rebuilding the
     * chip. Takes effect at the next reset(), which loads @p prog and
     * applies @p lw's DMA image.
     */
    void bind(Lowering &lw, std::shared_ptr<const AsmProgram> prog);

    /**
     * Runs to completion; @return cycles consumed by this run.
     * Calls fatal() if @p max_cycles elapse first — use runBounded()
     * to observe exhaustion as a status instead.
     */
    Cycle run(Cycle max_cycles = 500'000'000);

    /**
     * Runs for at most @p max_cycles (relative to the current chip
     * clock) and reports exhaustion explicitly instead of exiting.
     * After a timed-out run the chip is mid-program; the next
     * reset() rebuilds it from scratch.
     */
    RunResult runBounded(Cycle max_cycles = 500'000'000);

    /** @return true when the last run hit its cycle budget. */
    bool timedOut() const { return timedOut_; }

    /** @return true when the last run ended in a machine check. */
    bool machineChecked() const { return machineChecked_; }

    /**
     * @return first-error context of the most recent machine check
     * (valid once machineChecked(); survives reset() so callers can
     * report it after the retry).
     */
    const MachineCheckInfo &lastMachineCheck() const { return lastMc_; }

    /** @return chips rebuilt after timeouts/machine checks. */
    int rebuilds() const { return rebuilds_; }

    /** @return bind() calls since construction — how often this
     * engine re-staged a different compiled program (batch switches
     * and, in multi-model pools, weight swaps between families). */
    std::uint64_t binds() const { return binds_; }

    /**
     * Rearms the session for another inference: reloads the program
     * and re-applies the DMA image (restoring weights, constants and
     * the compile-time input). After a timed-out run the chip is
     * rebuilt wholesale, since a half-executed program leaves queues
     * and sequencers in an unknown state.
     */
    void reset();

    /**
     * Overwrites an activation tensor (typically the model input)
     * with dense [h x w x c] int8 data — every stored row of both
     * hemisphere parts, halos included, mirroring the compile-time
     * DMA layout. Models the per-request host input transfer.
     */
    void writeTensor(const LoweredTensor &t,
                     const std::vector<std::int8_t> &data);

    /** Reads a lowered tensor back into a dense reference tensor. */
    ref::QTensor readTensor(const LoweredTensor &t) const;

    /** @return the chip model. */
    Chip &chip() { return *chip_; }
    const Chip &chip() const { return *chip_; }

    // --- Periodic snapshots + mid-batch migration ---

    /**
     * Arms periodic snapshotting: bounded runs advance in chunks of
     * @p every cycles and capture a ChipSnapshot at each chunk
     * boundary (never after a machine check, so the last snapshot
     * always precedes the first uncorrectable error). 0 disables.
     * Capture is skipped silently whenever the chip refuses (e.g. a
     * trace recording is in progress). Chunking itself is invisible:
     * Chip::runBounded() stops bit-identically at any absolute cycle.
     */
    void enableSnapshots(Cycle every) { snapshotEvery_ = every; }

    /** @return the armed snapshot cadence (0 when disabled). */
    Cycle snapshotEvery() const { return snapshotEvery_; }

    /** @return the last captured snapshot, or nullptr. Cleared by
     *  reset() — a snapshot never outlives its batch. */
    const ChipSnapshot *lastSnapshot() const { return lastSnap_.get(); }

    /** @return snapshots captured since construction. */
    std::uint64_t snapshotCount() const { return snapshots_; }

    /** @return machine-check recoveries served via migration. */
    int migrations() const { return migrations_; }

    /**
     * Machine-check recovery without a full retry: rebuilds the chip
     * (fresh derived fault seed), reloads the program, restores the
     * last pre-fault snapshot onto it and resumes the run for at most
     * @p max_cycles more. The restored chip keeps its fresh RNG
     * streams, so the upset that condemned the source is not replayed
     * (scheduled FaultEvents do replay — they are wired to cycles).
     * Requires lastSnapshot() != nullptr; if the restore is refused
     * the session stays condemned and the result reads MachineCheck.
     */
    RunResult migrateAndResume(Cycle max_cycles = 500'000'000);

    /**
     * Enables the trace record/replay tier: the first complete run
     * after a reset() records the resolved micro-op sequence, and
     * subsequent fresh runs of the same bound program replay it (see
     * sim/exec_trace.hh). Runs with fault injection or a dispatch /
     * power trace enabled always take the normal path.
     */
    void enableReplay(bool on = true) { replayEnabled_ = on; }

    /** @return the trace recorded for the bound program, if any. */
    const std::shared_ptr<const ExecutionTrace> &
    trace() const
    {
        return trace_;
    }

    /** Installs a trace recorded elsewhere for the bound program. */
    void
    setTrace(std::shared_ptr<const ExecutionTrace> t)
    {
        trace_ = std::move(t);
    }

    /** @return runs served by replaying a recorded trace. */
    std::uint64_t replayCount() const { return replays_; }

    /** @return runs that successfully recorded a trace. */
    std::uint64_t recordCount() const { return records_; }

    /** @return the bound compiled program (serving-cache key). */
    const AsmProgram *program() const { return prog_.get(); }

    /** @return cycles consumed by the last run(). */
    Cycle cycles() const { return cycles_; }

    /**
     * @return chip cycles consumed over the session's lifetime,
     * *including* cycles burned on engines later condemned and
     * rebuilt — the honest compute cost of retries and migrations,
     * which the current chip's clock alone under-reports.
     */
    Cycle totalCycles() const { return retiredCycles_ + chip_->now(); }

    /** @return compute latency of the last run in seconds. */
    double latencySeconds() const;

    /** @return modeled one-time PCIe DMA time for the image. */
    double dmaSeconds() const { return dmaSeconds_; }

  private:
    /** The original per-cycle / fast-forward run path. */
    RunResult runRaw(Cycle max_cycles);

    /** Captures a snapshot if the chip permits one right now. */
    void captureSnapshot();

    /** @return true when this config may ever record or replay. */
    bool replayEligible() const;

    Lowering *lw_;
    ChipConfig cfg_;
    /** Cached assembly (with barrier preamble); shareable. */
    std::shared_ptr<const AsmProgram> prog_;
    std::unique_ptr<Chip> chip_;
    Cycle cycles_ = 0;
    bool timedOut_ = false;
    bool machineChecked_ = false;
    MachineCheckInfo lastMc_{};
    int rebuilds_ = 0;
    std::uint64_t binds_ = 0;
    double dmaSeconds_ = 0.0;
    /** Cycles consumed by chips already discarded (see totalCycles). */
    Cycle retiredCycles_ = 0;

    Cycle snapshotEvery_ = 0;
    std::unique_ptr<ChipSnapshot> lastSnap_;
    std::uint64_t snapshots_ = 0;
    int migrations_ = 0;

    bool replayEnabled_ = false;
    /**
     * True between reset()/construction and the next run: the chip
     * is at the freshly loaded program state a recording started
     * from, so a replay lands on identical footing.
     */
    bool fresh_ = true;
    std::shared_ptr<const ExecutionTrace> trace_;
    std::uint64_t replays_ = 0;
    std::uint64_t records_ = 0;
};

} // namespace tsp

#endif // TSP_RUNTIME_SESSION_HH
