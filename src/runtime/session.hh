/**
 * @file
 * Host runtime: owns a chip instance, emplaces the model via the DMA
 * manifest, loads the scheduled program (with its barrier preamble),
 * runs it to completion, and reads result tensors back — the host
 * interface duties of the paper's C2C/PCIe module (II item 6).
 */

#ifndef TSP_RUNTIME_SESSION_HH
#define TSP_RUNTIME_SESSION_HH

#include <memory>

#include "compiler/lowering.hh"
#include "ref/qnn.hh"
#include "sim/chip.hh"

namespace tsp {

/** Usable PCIe Gen4 x16 bandwidth for the DMA-time model (bytes/s). */
inline constexpr double kPcieGen4Bps = 32.0e9;

/** One compiled model bound to one chip. */
class InferenceSession
{
  public:
    /**
     * Builds the chip, applies @p lw's DMA image and loads its
     * program. The Lowering must be fully built (all layers added).
     */
    explicit InferenceSession(Lowering &lw, ChipConfig cfg = {});

    /** Runs to completion; @return total cycles. */
    Cycle run(Cycle max_cycles = 500'000'000);

    /** Reads a lowered tensor back into a dense reference tensor. */
    ref::QTensor readTensor(const LoweredTensor &t) const;

    /** @return the chip model. */
    Chip &chip() { return *chip_; }
    const Chip &chip() const { return *chip_; }

    /** @return cycles consumed by the last run(). */
    Cycle cycles() const { return cycles_; }

    /** @return compute latency of the last run in seconds. */
    double latencySeconds() const;

    /** @return modeled one-time PCIe DMA time for the image. */
    double dmaSeconds() const { return dmaSeconds_; }

  private:
    std::unique_ptr<Chip> chip_;
    Cycle cycles_ = 0;
    double dmaSeconds_ = 0.0;
};

} // namespace tsp

#endif // TSP_RUNTIME_SESSION_HH
