#include "runtime/pod_session.hh"

#include "common/logging.hh"
#include "common/seed.hh"

namespace tsp {

PodSession::PodSession(int chips, Cycle wire_latency, ChipConfig cfg)
    : chips_(chips), wireLatency_(wire_latency), cfg_(cfg),
      pod_(std::make_unique<Pod>(chips, wire_latency, cfg))
{
}

void
PodSession::loadPrograms(std::vector<AsmProgram> programs)
{
    TSP_ASSERT(static_cast<int>(programs.size()) == chips_);
    programs_ = std::move(programs);
    for (int c = 0; c < chips_; ++c) {
        pod_->chip(c).loadProgram(
            programs_[static_cast<std::size_t>(c)]);
    }
    // New programs (or a weight reinstall via new programs): any
    // recorded trace is stale.
    trace_.reset();
    fresh_ = true;
}

std::vector<Chip *>
PodSession::members()
{
    std::vector<Chip *> chips;
    chips.reserve(static_cast<std::size_t>(chips_));
    for (int c = 0; c < chips_; ++c)
        chips.push_back(&pod_->chip(c));
    return chips;
}

RunResult
PodSession::runBounded(Cycle max_cycles)
{
    // Record/replay only engages from the freshly loaded program
    // state a recording started from; any run consumes freshness.
    const bool eligible = replayEnabled_ && fresh_ &&
                          !cfg_.fault.enabled() && !cfg_.traceEnabled &&
                          !cfg_.powerTraceEnabled;
    fresh_ = false;
    if (eligible && trace_ && trace_->span <= max_cycles) {
        replayTrace(*trace_, members());
        ++replays_;
        timedOut_ = false;
        machineChecked_ = false;
        cycles_ = trace_->span;
        return {true, RunStatus::Completed, trace_->span};
    }
    if (eligible && !trace_) {
        TraceRecording rec(members());
        const RunResult r = runRaw(max_cycles);
        trace_ = rec.finish(r.completed);
        if (trace_)
            ++records_;
        return r;
    }
    return runRaw(max_cycles);
}

void
PodSession::captureSnapshot()
{
    auto snap = std::make_unique<PodSnapshot>();
    if (pod_->snapshot(*snap)) {
        lastSnap_ = std::move(snap);
        ++snapshots_;
    }
}

RunResult
PodSession::runRaw(Cycle max_cycles)
{
    // Member clocks are cumulative across reset() cycles, so the
    // budget applies relative to the current pod clock.
    const Cycle base = pod_->now();
    const Cycle limit = base + max_cycles;
    RunResult r;
    if (snapshotEvery_ > 0) {
        // Chunked run with a snapshot at each boundary; resuming a
        // limit-stopped runAllBounded() is bit-identical because
        // member evolution is independent of scheduler interleaving.
        // A machine-checked chunk takes no snapshot.
        for (;;) {
            const Cycle next =
                std::min(limit, pod_->now() + snapshotEvery_);
            r.completed = pod_->runAllBounded(next);
            machineChecked_ = pod_->machineCheck();
            if (r.completed || machineChecked_ ||
                pod_->now() >= limit) {
                break;
            }
            captureSnapshot();
        }
    } else {
        r.completed = pod_->runAllBounded(limit);
        machineChecked_ = pod_->machineCheck();
    }
    timedOut_ = !r.completed && !machineChecked_;
    if (r.completed) {
        r.status = RunStatus::Completed;
    } else if (machineChecked_) {
        r.status = RunStatus::MachineCheck;
        mcChip_ = pod_->machineCheckChip();
        lastMc_ = pod_->chip(mcChip_).machineCheckInfo();
    } else {
        r.status = RunStatus::CycleLimit;
    }
    r.cycles = pod_->now() - base;
    cycles_ = r.cycles;
    return r;
}

void
PodSession::reset()
{
    if (timedOut_ || machineChecked_) {
        // A half-finished collective leaves members desynchronized,
        // and one condemned chip poisons every downstream partial —
        // only a whole fresh pod is trustworthy. As in
        // InferenceSession::reset(), the rebuild draws a derived
        // fault seed so a bounded retry does not deterministically
        // replay the upset that killed the run.
        ++rebuilds_;
        for (int c = 0; c < chips_; ++c)
            retiredCycles_ += pod_->chip(c).now();
        ChipConfig cfg = cfg_;
        cfg.fault.seed =
            deriveSeed(cfg_.fault.seed, SeedDomain::EngineRebuild,
                       static_cast<std::uint64_t>(rebuilds_));
        pod_ = std::make_unique<Pod>(chips_, wireLatency_, cfg);
        timedOut_ = false;
        machineChecked_ = false;
    }
    TSP_ASSERT(!programs_.empty());
    for (int c = 0; c < chips_; ++c) {
        pod_->chip(c).loadProgram(
            programs_[static_cast<std::size_t>(c)]);
    }
    lastSnap_.reset(); // A snapshot never outlives its batch.
    fresh_ = true;
}

RunResult
PodSession::migrateAndResume(Cycle max_cycles)
{
    TSP_ASSERT(lastSnap_ != nullptr);
    // Rebuild discipline as in reset(): one condemned member poisons
    // the collective, so the whole pod is rebuilt, with derived fault
    // seeds so the killing upset sequence is not replayed.
    ++rebuilds_;
    ++migrations_;
    ChipConfig cfg = cfg_;
    cfg.fault.seed =
        deriveSeed(cfg_.fault.seed, SeedDomain::EngineRebuild,
                   static_cast<std::uint64_t>(rebuilds_));
    auto fresh = std::make_unique<Pod>(chips_, wireLatency_, cfg);
    for (int c = 0; c < chips_; ++c) {
        fresh->chip(c).loadProgram(
            programs_[static_cast<std::size_t>(c)]);
    }
    std::string err;
    if (!fresh->restore(*lastSnap_, &err))
        return {false, RunStatus::MachineCheck, 0};
    // Retire only the span the restored members will not re-cover:
    // each resumes at its snapshot-time clock, so the (snapshot,
    // fault] segment is re-executed and must not be double-counted.
    for (int c = 0; c < chips_; ++c) {
        const Cycle old_now = pod_->chip(c).now();
        const Cycle new_now = fresh->chip(c).now();
        retiredCycles_ += old_now - std::min(old_now, new_now);
    }
    pod_ = std::move(fresh);
    machineChecked_ = false;
    timedOut_ = false;
    fresh_ = false; // Mid-collective: no record/replay footing.
    return runRaw(max_cycles);
}

void
PodSession::writeWord(int chip, Hemisphere hem, int slice,
                      MemAddr addr, const Vec320 &v)
{
    pod_->chip(chip).mem(hem, slice).backdoorWrite(addr, v);
}

Vec320
PodSession::readWord(int chip, Hemisphere hem, int slice,
                     MemAddr addr) const
{
    return pod_->chip(chip).mem(hem, slice).backdoorRead(addr);
}

Cycle
PodSession::totalCycles() const
{
    Cycle total = retiredCycles_;
    for (int c = 0; c < chips_; ++c)
        total += pod_->chip(c).now();
    return total;
}

StatGroup
PodSession::stats() const
{
    StatGroup g;
    for (int c = 0; c < chips_; ++c) {
        const StatGroup cs = pod_->chip(c).stats();
        for (const auto &[name, value] : cs.all())
            g.add(name, value);
    }
    g.set("pod_chips", static_cast<std::uint64_t>(chips_));
    return g;
}

} // namespace tsp
