#include "runtime/session.hh"

#include "common/logging.hh"

namespace tsp {

InferenceSession::InferenceSession(Lowering &lw, ChipConfig cfg)
    : chip_(std::make_unique<Chip>(std::move(cfg)))
{
    const AsmProgram prog =
        lw.program().toAsm(/*with_preamble=*/true);
    chip_->loadProgram(prog);
    lw.image().applyTo(*chip_);
    dmaSeconds_ =
        static_cast<double>(lw.image().totalBytes()) / kPcieGen4Bps;
}

Cycle
InferenceSession::run(Cycle max_cycles)
{
    cycles_ = chip_->run(max_cycles);
    return cycles_;
}

double
InferenceSession::latencySeconds() const
{
    return static_cast<double>(cycles_) *
           chip_->config().cyclePeriodSec();
}

ref::QTensor
InferenceSession::readTensor(const LoweredTensor &t) const
{
    const ActTensor &at = t.t;
    ref::QTensor out(at.height, at.width, at.channels);
    for (int y = 0; y < at.height; ++y) {
        const int e = at.ownerOf(y);
        for (int x = 0; x < at.width; ++x) {
            for (int kg = 0; kg < at.kgCount; ++kg) {
                const GlobalAddr a = at.addrOf(e, y, x, kg);
                const Vec320 v =
                    chip_->mem(a.hem, a.slice).backdoorRead(a.addr);
                const int c_lo = kg * kMxmDim;
                const int c_hi =
                    std::min(at.channels, c_lo + kMxmDim);
                for (int c = c_lo; c < c_hi; ++c) {
                    out.at(y, x, c) = static_cast<std::int8_t>(
                        v.bytes[static_cast<std::size_t>(c - c_lo)]);
                }
            }
        }
    }
    return out;
}

} // namespace tsp
