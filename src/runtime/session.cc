#include "runtime/session.hh"

#include "common/logging.hh"
#include "common/seed.hh"

namespace tsp {

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Completed:
        return "completed";
      case RunStatus::CycleLimit:
        return "cycle_limit";
      case RunStatus::MachineCheck:
        return "machine_check";
    }
    return "?";
}

InferenceSession::InferenceSession(Lowering &lw, ChipConfig cfg)
    : InferenceSession(
          lw,
          std::make_shared<const AsmProgram>(
              lw.program().toAsm(/*with_preamble=*/true)),
          cfg)
{
}

InferenceSession::InferenceSession(
    Lowering &lw, std::shared_ptr<const AsmProgram> prog,
    ChipConfig cfg)
    : lw_(&lw), cfg_(cfg), prog_(std::move(prog)),
      chip_(std::make_unique<Chip>(cfg))
{
    chip_->loadProgram(*prog_);
    lw.image().applyTo(*chip_);
    dmaSeconds_ =
        static_cast<double>(lw.image().totalBytes()) / kPcieGen4Bps;
}

void
InferenceSession::bind(Lowering &lw,
                       std::shared_ptr<const AsmProgram> prog)
{
    lw_ = &lw;
    prog_ = std::move(prog);
    ++binds_;
    dmaSeconds_ =
        static_cast<double>(lw.image().totalBytes()) / kPcieGen4Bps;
    // The chip still holds the previous program and image until the
    // next reset(): any recorded trace is for the wrong program (or
    // the wrong weights after a reinstall), and no run before that
    // reset may record or replay.
    trace_.reset();
    fresh_ = false;
}

Cycle
InferenceSession::run(Cycle max_cycles)
{
    const RunResult r = runBounded(max_cycles);
    if (r.status == RunStatus::MachineCheck) {
        fatal("InferenceSession::run: machine check at cycle %llu, "
              "%s: %s",
              static_cast<unsigned long long>(lastMc_.cycle),
              lastMc_.unit.c_str(), lastMc_.detail.c_str());
    }
    if (!r.completed) {
        fatal("InferenceSession::run: cycle limit %llu reached — "
              "program never completes",
              static_cast<unsigned long long>(max_cycles));
    }
    return r.cycles;
}

bool
InferenceSession::replayEligible() const
{
    // Fault injection mutates consumed values in ways the tape does
    // not capture; the dispatch trace and the per-cycle power trace
    // are artifacts only per-cycle execution populates.
    return !cfg_.fault.enabled() && !cfg_.traceEnabled &&
           !cfg_.powerTraceEnabled;
}

RunResult
InferenceSession::runBounded(Cycle max_cycles)
{
    // Record/replay only engages from the freshly loaded program
    // state a recording started from; any run consumes freshness.
    const bool eligible = replayEnabled_ && fresh_ && replayEligible();
    fresh_ = false;
    if (eligible && trace_ && trace_->span <= max_cycles) {
        replayTrace(*trace_, {chip_.get()});
        ++replays_;
        timedOut_ = false;
        machineChecked_ = false;
        cycles_ = trace_->span;
        return {true, RunStatus::Completed, trace_->span};
    }
    if (eligible && !trace_) {
        TraceRecording rec({chip_.get()});
        const RunResult r = runRaw(max_cycles);
        trace_ = rec.finish(r.completed);
        if (trace_)
            ++records_;
        return r;
    }
    return runRaw(max_cycles);
}

void
InferenceSession::captureSnapshot()
{
    auto snap = std::make_unique<ChipSnapshot>();
    if (chip_->snapshot(*snap)) {
        lastSnap_ = std::move(snap);
        ++snapshots_;
    }
}

RunResult
InferenceSession::runRaw(Cycle max_cycles)
{
    // The chip clock is cumulative across reset() cycles, so the
    // budget is applied relative to the current time.
    const Cycle base = chip_->now();
    const Cycle limit = base + max_cycles;
    RunResult r;
    if (snapshotEvery_ > 0) {
        // Chunked run with a snapshot at each boundary. runBounded()
        // stops bit-identically at any absolute cycle (even inside a
        // fast-forwarded idle span), so chunking never perturbs the
        // simulation. A machine-checked chunk takes no snapshot: the
        // last capture always precedes the first uncorrectable error.
        for (;;) {
            const Cycle next =
                std::min(limit, chip_->now() + snapshotEvery_);
            r.completed = chip_->runBounded(next);
            machineChecked_ = chip_->machineCheck();
            if (r.completed || machineChecked_ ||
                chip_->now() >= limit) {
                break;
            }
            captureSnapshot();
        }
    } else {
        r.completed = chip_->runBounded(limit);
        machineChecked_ = chip_->machineCheck();
    }
    timedOut_ = !r.completed && !machineChecked_;
    if (r.completed) {
        r.status = RunStatus::Completed;
    } else if (machineChecked_) {
        r.status = RunStatus::MachineCheck;
        lastMc_ = chip_->machineCheckInfo();
    } else {
        r.status = RunStatus::CycleLimit;
    }
    r.cycles = chip_->now() - base;
    cycles_ = r.cycles;
    return r;
}

void
InferenceSession::reset()
{
    if (timedOut_ || machineChecked_) {
        // A half-executed program leaves queues, barriers and MXM
        // sequencers in an arbitrary state, and a machine-checked
        // chip is condemned; only a fresh chip is trustworthy.
        // Soft errors are environmental, not part of the schedule, so
        // the rebuilt chip draws a derived fault seed — a retry of the
        // same request must not deterministically replay the upset
        // that killed it. (Explicit FaultEvents *do* replay: they
        // model a fault wired to a cycle, and bounded retries against
        // them end in FailedMachineCheck by design.)
        ++rebuilds_;
        retiredCycles_ += chip_->now();
        ChipConfig cfg = cfg_;
        cfg.fault.seed =
            deriveSeed(cfg_.fault.seed, SeedDomain::EngineRebuild,
                       static_cast<std::uint64_t>(rebuilds_));
        chip_ = std::make_unique<Chip>(cfg);
        timedOut_ = false;
        machineChecked_ = false;
    }
    chip_->loadProgram(*prog_);
    lw_->image().applyTo(*chip_);
    lastSnap_.reset(); // A snapshot never outlives its batch.
    fresh_ = true;
}

RunResult
InferenceSession::migrateAndResume(Cycle max_cycles)
{
    TSP_ASSERT(lastSnap_ != nullptr);
    // Same rebuild discipline as reset() after a machine check: only
    // a fresh chip is trustworthy, and it draws a derived fault seed
    // so the condemned chip's upset sequence is not replayed.
    ++rebuilds_;
    ++migrations_;
    ChipConfig cfg = cfg_;
    cfg.fault.seed =
        deriveSeed(cfg_.fault.seed, SeedDomain::EngineRebuild,
                   static_cast<std::uint64_t>(rebuilds_));
    auto fresh = std::make_unique<Chip>(cfg);
    fresh->loadProgram(*prog_);
    std::string err;
    if (!fresh->restore(*lastSnap_, &err)) {
        // Same program, config and fault environment, so this cannot
        // happen; if it somehow does, stay condemned and let the
        // caller fall back to a full retry.
        return {false, RunStatus::MachineCheck, 0};
    }
    // The condemned chip ran from 0 to its fault; the restored one
    // resumes at the snapshot cycle. Only the span the new chip will
    // not re-cover is retired, or lifetime cycles would double-count
    // the (snapshot, fault] segment it replays.
    retiredCycles_ += chip_->now() - std::min(chip_->now(), fresh->now());
    chip_ = std::move(fresh);
    machineChecked_ = false;
    timedOut_ = false;
    fresh_ = false; // Mid-program: no record/replay footing.
    return runRaw(max_cycles);
}

double
InferenceSession::latencySeconds() const
{
    return static_cast<double>(cycles_) *
           chip_->config().cyclePeriodSec();
}

void
InferenceSession::writeTensor(const LoweredTensor &t,
                              const std::vector<std::int8_t> &data)
{
    const ActTensor &at = t.t;
    TSP_ASSERT(static_cast<std::size_t>(at.height) * at.width *
                   at.channels ==
               data.size());
    // Same traversal as Lowering::inputTensor's DMA manifest: every
    // stored row of both engine parts, including the halo rows each
    // side duplicates past the split boundary.
    Vec320 v;
    for (int e = 0; e < 2; ++e) {
        const int y_lo = e == 0 ? 0 : at.storedLoY();
        const int y_hi = e == 0 ? at.storedHiY() : at.height;
        for (int y = y_lo; y < y_hi; ++y) {
            for (int x = 0; x < at.width; ++x) {
                for (int kg = 0; kg < at.kgCount; ++kg) {
                    v.bytes.fill(0);
                    const int c_lo = kg * kMxmDim;
                    const int c_hi =
                        std::min(at.channels, c_lo + kMxmDim);
                    for (int c = c_lo; c < c_hi; ++c) {
                        v.bytes[static_cast<std::size_t>(c - c_lo)] =
                            static_cast<std::uint8_t>(
                                data[(static_cast<std::size_t>(y) *
                                          at.width +
                                      x) *
                                         at.channels +
                                     c]);
                    }
                    const GlobalAddr a = at.addrOf(e, y, x, kg);
                    chip_->mem(a.hem, a.slice)
                        .backdoorWrite(a.addr, v);
                }
            }
        }
    }
}

ref::QTensor
InferenceSession::readTensor(const LoweredTensor &t) const
{
    const ActTensor &at = t.t;
    ref::QTensor out(at.height, at.width, at.channels);
    for (int y = 0; y < at.height; ++y) {
        const int e = at.ownerOf(y);
        for (int x = 0; x < at.width; ++x) {
            for (int kg = 0; kg < at.kgCount; ++kg) {
                const GlobalAddr a = at.addrOf(e, y, x, kg);
                const Vec320 v =
                    chip_->mem(a.hem, a.slice).backdoorRead(a.addr);
                const int c_lo = kg * kMxmDim;
                const int c_hi =
                    std::min(at.channels, c_lo + kMxmDim);
                for (int c = c_lo; c < c_hi; ++c) {
                    out.at(y, x, c) = static_cast<std::int8_t>(
                        v.bytes[static_cast<std::size_t>(c - c_lo)]);
                }
            }
        }
    }
    return out;
}

} // namespace tsp
