/**
 * @file
 * Host runtime for a multi-chip pod: owns the ring, loads one
 * statically scheduled program per member, runs the collective with
 * the conservative-lookahead fast-forward scheduler, and surfaces
 * the same RunResult/reset() lifecycle as the single-chip
 * InferenceSession — so the serving layer can treat "a pod" as just
 * another backend.
 *
 * Reliability semantics scale up from the chip: a machine check on
 * *any* member condemns the *whole* pod (a collective's result is a
 * function of every member's state), and reset() after a timeout or
 * machine check rebuilds every member with a derived fault seed.
 */

#ifndef TSP_RUNTIME_POD_SESSION_HH
#define TSP_RUNTIME_POD_SESSION_HH

#include <memory>
#include <vector>

#include "c2c/pod.hh"
#include "runtime/session.hh"
#include "sim/snapshot.hh"

namespace tsp {

/** A reusable pod bound to one set of per-chip programs. */
class PodSession
{
  public:
    /** Builds the pod (see Pod's ctor for per-member fault seeds). */
    PodSession(int chips, Cycle wire_latency, ChipConfig cfg = {});

    /**
     * Caches and loads one program per member chip (replacing any).
     * reset() reloads the same programs.
     */
    void loadPrograms(std::vector<AsmProgram> programs);

    /**
     * Runs the pod for at most @p max_cycles (relative to the current
     * pod clock) via Pod::runAllBounded(). After a failed run the pod
     * is mid-collective; the next reset() rebuilds it wholesale.
     */
    RunResult runBounded(Cycle max_cycles = 500'000'000);

    /**
     * Rearms the pod for another collective: reloads the cached
     * programs, rebuilding every member chip first when the last run
     * timed out or machine checked (with a fault seed derived from
     * the rebuild count, mirroring InferenceSession::reset()).
     * Memory contents do NOT survive a rebuild; restage inputs after
     * every reset().
     */
    void reset();

    /** Backdoor-writes one word on member @p chip. */
    void writeWord(int chip, Hemisphere hem, int slice, MemAddr addr,
                   const Vec320 &v);

    /** Backdoor-reads one word on member @p chip. */
    Vec320 readWord(int chip, Hemisphere hem, int slice,
                    MemAddr addr) const;

    /** @return true when the last run hit its cycle budget. */
    bool timedOut() const { return timedOut_; }

    /** @return true when the last run ended in a machine check. */
    bool machineChecked() const { return machineChecked_; }

    /**
     * @return first-error context of the most recent machine check
     * (valid once machineChecked(); survives reset()).
     */
    const MachineCheckInfo &lastMachineCheck() const { return lastMc_; }

    /**
     * @return ring index of the member that raised the most recent
     * machine check (-1 before any; survives reset()).
     */
    int machineCheckChip() const { return mcChip_; }

    /** @return pods rebuilt after timeouts/machine checks. */
    int rebuilds() const { return rebuilds_; }

    /** @return cycles consumed by the last run. */
    Cycle cycles() const { return cycles_; }

    /**
     * @return member-summed chip cycles consumed over the session's
     * lifetime, *including* cycles burned on pods later condemned
     * and rebuilt (mirrors InferenceSession::totalCycles()).
     */
    Cycle totalCycles() const;

    /** @return the pod. */
    Pod &pod() { return *pod_; }
    const Pod &pod() const { return *pod_; }

    // --- Periodic snapshots + mid-batch migration ---

    /**
     * Arms periodic pod snapshotting: bounded runs advance in chunks
     * of @p every cycles, capturing a PodSnapshot at each chunk
     * boundary (never after a machine check). 0 disables. A chunk
     * boundary is a consistent cut even when member clocks differ by
     * the conservative lookahead: every C2C vector is delivered into
     * the receiver's link queue at send time, so per-chip state is
     * the whole joint state. Mirrors
     * InferenceSession::enableSnapshots().
     */
    void enableSnapshots(Cycle every) { snapshotEvery_ = every; }

    /** @return the armed snapshot cadence (0 when disabled). */
    Cycle snapshotEvery() const { return snapshotEvery_; }

    /** @return the last captured snapshot, or nullptr. Cleared by
     *  reset(). */
    const PodSnapshot *lastSnapshot() const { return lastSnap_.get(); }

    /** @return snapshots captured since construction. */
    std::uint64_t snapshotCount() const { return snapshots_; }

    /** @return machine-check recoveries served via migration. */
    int migrations() const { return migrations_; }

    /**
     * Machine-check recovery without a full retry: rebuilds the whole
     * pod (fresh derived fault seeds), reloads the programs, restores
     * the last pre-fault snapshot and resumes for at most
     * @p max_cycles more. Mirrors
     * InferenceSession::migrateAndResume().
     */
    RunResult migrateAndResume(Cycle max_cycles = 500'000'000);

    /** @return member-aggregated statistics (sums across chips). */
    StatGroup stats() const;

    /**
     * Enables the trace record/replay tier: the first complete
     * collective after a reset()/loadPrograms() records every
     * member's micro-op sequence, and subsequent fresh runs replay
     * it (see sim/exec_trace.hh). Mirrors
     * InferenceSession::enableReplay().
     */
    void enableReplay(bool on = true) { replayEnabled_ = on; }

    /** @return the trace recorded for the loaded programs, if any. */
    const std::shared_ptr<const ExecutionTrace> &
    trace() const
    {
        return trace_;
    }

    /** Installs a trace recorded elsewhere for the loaded programs. */
    void
    setTrace(std::shared_ptr<const ExecutionTrace> t)
    {
        trace_ = std::move(t);
    }

    /** @return runs served by replaying a recorded trace. */
    std::uint64_t replayCount() const { return replays_; }

    /** @return runs that successfully recorded a trace. */
    std::uint64_t recordCount() const { return records_; }

  private:
    /** The original Pod::runAllBounded() path. */
    RunResult runRaw(Cycle max_cycles);

    /** Captures a snapshot if every member permits one right now. */
    void captureSnapshot();

    /** @return every member chip, in ring order. */
    std::vector<Chip *> members();
    int chips_;
    Cycle wireLatency_;
    ChipConfig cfg_;
    std::unique_ptr<Pod> pod_;
    std::vector<AsmProgram> programs_;
    Cycle cycles_ = 0;
    bool timedOut_ = false;
    bool machineChecked_ = false;
    MachineCheckInfo lastMc_{};
    int mcChip_ = -1;
    int rebuilds_ = 0;
    /** Member cycles consumed by pods already discarded. */
    Cycle retiredCycles_ = 0;

    Cycle snapshotEvery_ = 0;
    std::unique_ptr<PodSnapshot> lastSnap_;
    std::uint64_t snapshots_ = 0;
    int migrations_ = 0;

    bool replayEnabled_ = false;
    /** True between loadPrograms()/reset() and the next run. */
    bool fresh_ = false;
    std::shared_ptr<const ExecutionTrace> trace_;
    std::uint64_t replays_ = 0;
    std::uint64_t records_ = 0;
};

} // namespace tsp

#endif // TSP_RUNTIME_POD_SESSION_HH
