/**
 * @file
 * Golden CPU reference for the quantized NN operators the TSP
 * pipeline implements. Bit-exact with the chip model by construction:
 * the requantization step reuses the VXM's own aluConvert semantics
 * (fp32 multiply, round-to-nearest-even, int8 saturation), and the
 * integer accumulation matches the MXM's int8 x int8 -> int32 MACCs.
 * Tensors are dense row-major [h][w][c] int8.
 */

#ifndef TSP_REF_QNN_HH
#define TSP_REF_QNN_HH

#include <cstdint>
#include <vector>

namespace tsp::ref {

/** Dense int8 activation tensor, row-major [h][w][c]. */
struct QTensor
{
    int h = 1;
    int w = 1;
    int c = 0;
    std::vector<std::int8_t> data;

    QTensor() = default;
    QTensor(int h_, int w_, int c_)
        : h(h_), w(w_), c(c_),
          data(static_cast<std::size_t>(h_) * w_ * c_, 0)
    {
    }

    std::int8_t
    at(int y, int x, int ch) const
    {
        return data[(static_cast<std::size_t>(y) * w + x) * c + ch];
    }

    std::int8_t &
    at(int y, int x, int ch)
    {
        return data[(static_cast<std::size_t>(y) * w + x) * c + ch];
    }
};

/**
 * Requantizes an int32 accumulator: sat_int32(acc + bias), widen to
 * fp32, multiply by scale, convert to int8 with round-to-nearest-even
 * and saturation, optional ReLU — exactly the VXM chain.
 */
std::int8_t requantize(std::int32_t acc, std::int32_t bias,
                       float scale, bool relu);

/**
 * Quantized conv2d: int8 x int8 -> int32 accumulate, then
 * requantize(). Weights are [outC][inC][kh][kw]; symmetric padding.
 */
QTensor conv2d(const QTensor &in, const std::int8_t *w, int out_c,
               int kh, int kw, int stride, int pad,
               const std::int32_t *bias, const float *scale,
               bool relu);

/** k x k max pooling with -128 padding semantics. */
QTensor maxPool(const QTensor &in, int k, int stride, int pad);

/**
 * Global average pooling via saturating int32 sum then a single
 * fp32 scale -> int8 conversion (matches the chip's add chain).
 */
QTensor globalAvgPool(const QTensor &in, float scale);

/** out = relu?(sat_int8(rne(a*sa + b*sb))) per element. */
QTensor residualAdd(const QTensor &a, const QTensor &b, float sa,
                    float sb, bool relu);

/** Fully connected as 1x1 conv on a 1x1 spatial tensor. */
QTensor fullyConnected(const QTensor &in, const std::int8_t *w,
                       int out_c, const std::int32_t *bias,
                       const float *scale, bool relu);

/**
 * Floating-point reference conv (for quantization-loss experiments):
 * plain fp32 convolution with bias, optional ReLU.
 */
std::vector<float> conv2dF32(const std::vector<float> &in, int h,
                             int w, int c, const float *wgt, int out_c,
                             int kh, int kw, int stride, int pad,
                             const float *bias, bool relu);

} // namespace tsp::ref

#endif // TSP_REF_QNN_HH
