#include "ref/qnn.hh"

#include <algorithm>

#include "common/logging.hh"
#include "vxm/alu_ops.hh"

namespace tsp::ref {

std::int8_t
requantize(std::int32_t acc, std::int32_t bias, float scale, bool relu)
{
    // Stage 1: saturating int32 add (VXM AddSat).
    LaneValue v;
    v.i = acc;
    LaneValue b;
    b.i = bias;
    v = aluBinary(Opcode::AddSat, DType::Int32, v, b);
    // Stage 2: int32 -> fp32.
    v = aluConvert(DType::Int32, DType::Fp32, v);
    // Stage 3: x scale.
    LaneValue s;
    s.f = scale;
    v = aluBinary(Opcode::Mul, DType::Fp32, v, s);
    // Stage 4: fp32 -> int8 (RNE + saturate).
    v = aluConvert(DType::Fp32, DType::Int8, v);
    if (relu)
        v = aluUnary(Opcode::Relu, DType::Int8, v, 0);
    return static_cast<std::int8_t>(v.i);
}

QTensor
conv2d(const QTensor &in, const std::int8_t *w, int out_c, int kh,
       int kw, int stride, int pad, const std::int32_t *bias,
       const float *scale, bool relu)
{
    const int oh = (in.h + 2 * pad - kh) / stride + 1;
    const int ow = (in.w + 2 * pad - kw) / stride + 1;
    TSP_ASSERT(oh >= 1 && ow >= 1);
    QTensor out(oh, ow, out_c);

    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            for (int oc = 0; oc < out_c; ++oc) {
                std::int32_t acc = 0;
                for (int ky = 0; ky < kh; ++ky) {
                    const int iy = oy * stride - pad + ky;
                    if (iy < 0 || iy >= in.h)
                        continue;
                    for (int kx = 0; kx < kw; ++kx) {
                        const int ix = ox * stride - pad + kx;
                        if (ix < 0 || ix >= in.w)
                            continue;
                        for (int ic = 0; ic < in.c; ++ic) {
                            const std::int8_t wv =
                                w[((static_cast<std::size_t>(oc) *
                                        in.c +
                                    ic) *
                                       kh +
                                   ky) *
                                      kw +
                                  kx];
                            acc += static_cast<std::int32_t>(wv) *
                                   in.at(iy, ix, ic);
                        }
                    }
                }
                out.at(oy, ox, oc) =
                    requantize(acc, bias[oc], scale[oc], relu);
            }
        }
    }
    return out;
}

QTensor
maxPool(const QTensor &in, int k, int stride, int pad)
{
    const int oh = (in.h + 2 * pad - k) / stride + 1;
    const int ow = (in.w + 2 * pad - k) / stride + 1;
    QTensor out(oh, ow, in.c);
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            for (int ch = 0; ch < in.c; ++ch) {
                std::int8_t m = -128;
                for (int ky = 0; ky < k; ++ky) {
                    const int iy = oy * stride - pad + ky;
                    if (iy < 0 || iy >= in.h)
                        continue;
                    for (int kx = 0; kx < k; ++kx) {
                        const int ix = ox * stride - pad + kx;
                        if (ix < 0 || ix >= in.w)
                            continue;
                        m = std::max(m, in.at(iy, ix, ch));
                    }
                }
                out.at(oy, ox, ch) = m;
            }
        }
    }
    return out;
}

QTensor
globalAvgPool(const QTensor &in, float scale)
{
    QTensor out(1, 1, in.c);
    for (int ch = 0; ch < in.c; ++ch) {
        // Saturating int32 accumulation, matching the VXM AddSat
        // chain (saturation is unreachable for realistic sizes but
        // kept for bit-exactness).
        LaneValue acc;
        acc.i = 0;
        for (int y = 0; y < in.h; ++y) {
            for (int x = 0; x < in.w; ++x) {
                LaneValue v;
                v.i = in.at(y, x, ch);
                acc = aluBinary(Opcode::AddSat, DType::Int32, acc, v);
            }
        }
        acc = aluConvert(DType::Int32, DType::Fp32, acc);
        LaneValue s;
        s.f = scale;
        acc = aluBinary(Opcode::Mul, DType::Fp32, acc, s);
        acc = aluConvert(DType::Fp32, DType::Int8, acc);
        out.at(0, 0, ch) = static_cast<std::int8_t>(acc.i);
    }
    return out;
}

QTensor
residualAdd(const QTensor &a, const QTensor &b, float sa, float sb,
            bool relu)
{
    TSP_ASSERT(a.h == b.h && a.w == b.w && a.c == b.c);
    QTensor out(a.h, a.w, a.c);
    for (std::size_t i = 0; i < a.data.size(); ++i) {
        // Matches the eltwise VXM pipeline: widen both to fp32,
        // scale, add, convert to int8 (RNE + saturate), ReLU.
        LaneValue va;
        va.i = a.data[i];
        va = aluConvert(DType::Int8, DType::Fp32, va);
        LaneValue vsa;
        vsa.f = sa;
        va = aluBinary(Opcode::Mul, DType::Fp32, va, vsa);
        LaneValue vb;
        vb.i = b.data[i];
        vb = aluConvert(DType::Int8, DType::Fp32, vb);
        LaneValue vsb;
        vsb.f = sb;
        vb = aluBinary(Opcode::Mul, DType::Fp32, vb, vsb);
        LaneValue sum = aluBinary(Opcode::Add, DType::Fp32, va, vb);
        sum = aluConvert(DType::Fp32, DType::Int8, sum);
        if (relu)
            sum = aluUnary(Opcode::Relu, DType::Int8, sum, 0);
        out.data[i] = static_cast<std::int8_t>(sum.i);
    }
    return out;
}

QTensor
fullyConnected(const QTensor &in, const std::int8_t *w, int out_c,
               const std::int32_t *bias, const float *scale,
               bool relu)
{
    TSP_ASSERT(in.h == 1 && in.w == 1);
    return conv2d(in, w, out_c, 1, 1, 1, 0, bias, scale, relu);
}

std::vector<float>
conv2dF32(const std::vector<float> &in, int h, int w, int c,
          const float *wgt, int out_c, int kh, int kw, int stride,
          int pad, const float *bias, bool relu)
{
    const int oh = (h + 2 * pad - kh) / stride + 1;
    const int ow = (w + 2 * pad - kw) / stride + 1;
    std::vector<float> out(
        static_cast<std::size_t>(oh) * ow * out_c, 0.0f);
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            for (int oc = 0; oc < out_c; ++oc) {
                float acc = bias ? bias[oc] : 0.0f;
                for (int ky = 0; ky < kh; ++ky) {
                    const int iy = oy * stride - pad + ky;
                    if (iy < 0 || iy >= h)
                        continue;
                    for (int kx = 0; kx < kw; ++kx) {
                        const int ix = ox * stride - pad + kx;
                        if (ix < 0 || ix >= w)
                            continue;
                        for (int ic = 0; ic < c; ++ic) {
                            acc += wgt[((static_cast<std::size_t>(
                                             oc) *
                                             c +
                                         ic) *
                                            kh +
                                        ky) *
                                           kw +
                                       kx] *
                                   in[(static_cast<std::size_t>(iy) *
                                           w +
                                       ix) *
                                          c +
                                      ic];
                        }
                    }
                }
                if (relu)
                    acc = std::max(acc, 0.0f);
                out[(static_cast<std::size_t>(oy) * ow + ox) * out_c +
                    oc] = acc;
            }
        }
    }
    return out;
}

} // namespace tsp::ref
