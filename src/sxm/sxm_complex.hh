/**
 * @file
 * The switch execution module (paper III.E, Fig. 8): one complex per
 * hemisphere providing the Y-dimension of the on-chip network.
 *
 * Sub-units (each with its own instruction queue): North/South lane
 * shifters with a select combiner, a 320-lane permuter, a per-superlane
 * distributor (remap / replicate / zero-fill), an n x n rotator, and
 * two 16x16 transposers — so the chip can sustain four simultaneous
 * transpose16 operations, matching the paper.
 */

#ifndef TSP_SXM_SXM_COMPLEX_HH
#define TSP_SXM_SXM_COMPLEX_HH

#include <cstdint>

#include "arch/config.hh"
#include "stream/stream_io.hh"

namespace tsp {

/** One hemisphere's SXM complex. */
class SxmComplex
{
  public:
    SxmComplex(Hemisphere hem, const ChipConfig &cfg,
               StreamFabric &fabric);

    /**
     * Executes one SXM instruction on sub-unit @p unit at cycle
     * @p now. The unit must match the opcode (a shift on the permuter
     * is a program bug).
     */
    void execute(const Instruction &inst, SxmUnit unit, Cycle now);

    /** @return this complex's hemisphere. */
    Hemisphere hemisphere() const { return hem_; }

    /** @return X position on the superlane. */
    SlicePos pos() const { return Layout::sxmPos(hem_); }

    /** @return total bytes switched (power model input). */
    std::uint64_t bytesSwitched() const { return bytesSwitched_; }

    /** @return instructions executed. */
    std::uint64_t instructions() const { return instructions_; }

    /** @return the stream access point (CSR counters). */
    const StreamIo &io() const { return io_; }

    /** Serializes counters (SXM ops complete within their issue). */
    void
    saveState(SnapshotWriter &w) const
    {
        io_.saveState(w);
        w.u64(bytesSwitched_);
        w.u64(instructions_);
    }

    /** Restores counters. */
    void
    loadState(SnapshotReader &r)
    {
        io_.loadState(r);
        bytesSwitched_ = r.u64();
        instructions_ = r.u64();
    }

  private:
    void executeShift(const Instruction &inst, bool north, Cycle now);
    void executeSelect(const Instruction &inst, Cycle now);
    void executePermute(const Instruction &inst, Cycle now);
    void executeDistribute(const Instruction &inst, Cycle now);
    void executeRotate(const Instruction &inst, Cycle now);
    void executeTranspose(const Instruction &inst, Cycle now);

    static void checkUnit(Opcode op, SxmUnit unit);

    Hemisphere hem_;
    const ChipConfig &cfg_;
    StreamIo io_;

    std::uint64_t bytesSwitched_ = 0;
    std::uint64_t instructions_ = 0;
};

} // namespace tsp

#endif // TSP_SXM_SXM_COMPLEX_HH
