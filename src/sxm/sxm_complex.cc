#include "sxm/sxm_complex.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tsp {

SxmComplex::SxmComplex(Hemisphere hem, const ChipConfig &cfg,
                       StreamFabric &fabric)
    : hem_(hem), cfg_(cfg),
      io_(cfg, fabric,
          strformat("SXM_%c", hem == Hemisphere::East ? 'E' : 'W'))
{
}

void
SxmComplex::checkUnit(Opcode op, SxmUnit unit)
{
    bool ok = false;
    switch (op) {
      case Opcode::ShiftUp:
        ok = unit == SxmUnit::ShiftNorth;
        break;
      case Opcode::ShiftDown:
        ok = unit == SxmUnit::ShiftSouth;
        break;
      case Opcode::SelectNS:
        ok = unit == SxmUnit::Select;
        break;
      case Opcode::Permute:
        ok = unit == SxmUnit::Permute;
        break;
      case Opcode::Distribute:
        ok = unit == SxmUnit::Distribute;
        break;
      case Opcode::Rotate:
        ok = unit == SxmUnit::Rotate;
        break;
      case Opcode::Transpose:
        ok = unit == SxmUnit::Transpose0 || unit == SxmUnit::Transpose1;
        break;
      default:
        break;
    }
    if (!ok) {
        panic("SXM: opcode %s dispatched to unit %s", opcodeName(op),
              sxmUnitName(unit));
    }
}

void
SxmComplex::execute(const Instruction &inst, SxmUnit unit, Cycle now)
{
    checkUnit(inst.op, unit);
    ++instructions_;
    switch (inst.op) {
      case Opcode::ShiftUp:
        executeShift(inst, /*north=*/true, now);
        return;
      case Opcode::ShiftDown:
        executeShift(inst, /*north=*/false, now);
        return;
      case Opcode::SelectNS:
        executeSelect(inst, now);
        return;
      case Opcode::Permute:
        executePermute(inst, now);
        return;
      case Opcode::Distribute:
        executeDistribute(inst, now);
        return;
      case Opcode::Rotate:
        executeRotate(inst, now);
        return;
      case Opcode::Transpose:
        executeTranspose(inst, now);
        return;
      default:
        panic("SXM: bad opcode %s", opcodeName(inst.op));
    }
}

void
SxmComplex::executeShift(const Instruction &inst, bool north, Cycle now)
{
    const Vec320 in = io_.consume(inst.srcA, pos());
    const int n = static_cast<int>(inst.imm0);
    TSP_ASSERT(n >= 0 && n < kLanes);

    Vec320 out;
    // North raises the lane index (instructions flow northward over
    // rising superlanes); vacated lanes zero-fill.
    for (int l = 0; l < kLanes; ++l) {
        const int src = north ? l - n : l + n;
        out.bytes[static_cast<std::size_t>(l)] =
            (src >= 0 && src < kLanes)
                ? in.bytes[static_cast<std::size_t>(src)]
                : 0;
    }
    io_.produce(inst.dst, pos(), out,
                now + opTiming(inst.op).dFunc);
    bytesSwitched_ += kLanes;
}

void
SxmComplex::executeSelect(const Instruction &inst, Cycle now)
{
    const Vec320 a = io_.consume(inst.srcA, pos());
    const Vec320 b = io_.consume(inst.srcB, pos());

    Vec320 out;
    // imm0 is a 20-bit per-superlane mask: bit s set selects b for
    // superlane s.
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        const bool take_b = (inst.imm0 >> sl) & 1;
        const Vec320 &src = take_b ? b : a;
        for (int j = 0; j < kLanesPerSuperlane; ++j) {
            const int l = sl * kLanesPerSuperlane + j;
            out.bytes[static_cast<std::size_t>(l)] =
                src.bytes[static_cast<std::size_t>(l)];
        }
    }
    io_.produce(inst.dst, pos(), out, now + opTiming(inst.op).dFunc);
    bytesSwitched_ += kLanes;
}

void
SxmComplex::executePermute(const Instruction &inst, Cycle now)
{
    TSP_ASSERT(inst.map && inst.map->size() == kLanes);
    const Vec320 in = io_.consume(inst.srcA, pos());

    Vec320 out;
    for (int l = 0; l < kLanes; ++l) {
        const std::uint16_t src = (*inst.map)[static_cast<std::size_t>(l)];
        TSP_ASSERT(src < kLanes);
        out.bytes[static_cast<std::size_t>(l)] =
            in.bytes[static_cast<std::size_t>(src)];
    }
    io_.produce(inst.dst, pos(), out, now + opTiming(inst.op).dFunc);
    bytesSwitched_ += kLanes;
}

void
SxmComplex::executeDistribute(const Instruction &inst, Cycle now)
{
    TSP_ASSERT(inst.map &&
               inst.map->size() == kLanesPerSuperlane);
    const Vec320 in = io_.consume(inst.srcA, pos());

    // The same 16-lane remap applies within every superlane; the
    // sentinel 0xffff zero-fills a lane (zero padding, filter
    // rearrangement).
    Vec320 out;
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        for (int j = 0; j < kLanesPerSuperlane; ++j) {
            const std::uint16_t src =
                (*inst.map)[static_cast<std::size_t>(j)];
            const int l = sl * kLanesPerSuperlane + j;
            if (src == 0xffff) {
                out.bytes[static_cast<std::size_t>(l)] = 0;
            } else {
                TSP_ASSERT(src < kLanesPerSuperlane);
                out.bytes[static_cast<std::size_t>(l)] =
                    in.bytes[static_cast<std::size_t>(
                        sl * kLanesPerSuperlane + src)];
            }
        }
    }
    io_.produce(inst.dst, pos(), out, now + opTiming(inst.op).dFunc);
    bytesSwitched_ += kLanes;
}

void
SxmComplex::executeRotate(const Instruction &inst, Cycle now)
{
    const int n = static_cast<int>(inst.imm0);
    TSP_ASSERT(n == 3 || n == 4);
    const int block = n * n;
    const Vec320 in = io_.consume(inst.srcA, pos());
    const Cycle when = now + opTiming(inst.op).dFunc;

    // Produce n^2 output streams; output r is the input rotated by r
    // elements within each n^2-lane block (all possible rotations of
    // the n x n window). Trailing lanes past the last whole block are
    // zero.
    const int whole = (kLanes / block) * block;
    for (int r = 0; r < block; ++r) {
        Vec320 out;
        for (int l = 0; l < whole; ++l) {
            const int base = (l / block) * block;
            const int j = l % block;
            out.bytes[static_cast<std::size_t>(l)] =
                in.bytes[static_cast<std::size_t>(
                    base + (j + r) % block)];
        }
        StreamRef d = inst.dst;
        d.id = static_cast<StreamId>(inst.dst.id + r);
        TSP_ASSERT(d.id < kStreamsPerDir);
        io_.produce(d, pos(), out, when);
        bytesSwitched_ += kLanes;
    }
}

void
SxmComplex::executeTranspose(const Instruction &inst, Cycle now)
{
    TSP_ASSERT(inst.srcA.id + 16 <= kStreamsPerDir);
    TSP_ASSERT(inst.dst.id + 16 <= kStreamsPerDir);
    const Cycle when = now + opTiming(inst.op).dFunc;

    Vec320 in[16];
    for (int k = 0; k < 16; ++k) {
        StreamRef s = inst.srcA;
        s.id = static_cast<StreamId>(inst.srcA.id + k);
        in[k] = io_.consume(s, pos());
    }

    // Within each superlane, exchange the (stream, lane) axes of the
    // 16x16 element tile.
    for (int k = 0; k < 16; ++k) {
        Vec320 out;
        for (int sl = 0; sl < kSuperlanes; ++sl) {
            for (int j = 0; j < kLanesPerSuperlane; ++j) {
                out.bytes[static_cast<std::size_t>(
                    sl * kLanesPerSuperlane + j)] =
                    in[j].bytes[static_cast<std::size_t>(
                        sl * kLanesPerSuperlane + k)];
            }
        }
        StreamRef d = inst.dst;
        d.id = static_cast<StreamId>(inst.dst.id + k);
        io_.produce(d, pos(), out, when);
        bytesSwitched_ += kLanes;
    }
}

} // namespace tsp
