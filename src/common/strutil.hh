/**
 * @file
 * Small string helpers shared by the assembler and report printers.
 */

#ifndef TSP_COMMON_STRUTIL_HH
#define TSP_COMMON_STRUTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace tsp {

/** Strips leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Splits on @p sep, trimming each piece; empty pieces are kept. */
std::vector<std::string> split(std::string_view s, char sep);

/** Splits on runs of whitespace; empty pieces are dropped. */
std::vector<std::string> splitWs(std::string_view s);

/** Case-insensitive ASCII string equality. */
bool iequals(std::string_view a, std::string_view b);

/** ASCII lower-casing. */
std::string toLower(std::string_view s);

/** @return true if @p s parses fully as a (possibly negative) integer. */
bool parseInt(std::string_view s, long &out);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tsp

#endif // TSP_COMMON_STRUTIL_HH
