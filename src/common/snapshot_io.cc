#include "common/snapshot_io.hh"

namespace tsp {

std::uint64_t
fnv1a64(const void *data, std::size_t n, std::uint64_t h)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace tsp
