/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal simulator bugs
 * (conditions that should never happen regardless of user input) and
 * aborts; fatal() is for user errors (bad configuration, invalid
 * arguments) and exits cleanly with an error code. warn() and inform()
 * emit status messages without stopping the simulation.
 */

#ifndef TSP_COMMON_LOGGING_HH
#define TSP_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tsp {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global log verbosity. Messages above this level are dropped. */
void setLogLevel(LogLevel level);

/** @return the current global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort.
 *
 * @param fmt printf-style format string followed by its arguments.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad config, invalid argument)
 * and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but non-fatal behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report debug-level detail (dropped unless LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; calls panic() with location info when
 * the condition does not hold. Enabled in all build types because the
 * simulator's correctness claims depend on these checks.
 */
#define TSP_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::tsp::panicAt(__FILE__, __LINE__, #cond);                     \
        }                                                                  \
    } while (0)

/** Implementation hook for TSP_ASSERT. */
[[noreturn]] void panicAt(const char *file, int line, const char *cond);

} // namespace tsp

#endif // TSP_COMMON_LOGGING_HH
