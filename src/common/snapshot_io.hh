/**
 * @file
 * Byte-level serialization primitives for deterministic state
 * snapshots.
 *
 * Every multi-byte value is written little-endian regardless of host
 * order, so a snapshot taken on one machine restores bit-identically
 * on another. SnapshotWriter appends to a growable buffer;
 * SnapshotReader consumes it sequentially with sticky failure on
 * overrun — callers check ok() once at the end instead of after every
 * field.
 */

#ifndef TSP_COMMON_SNAPSHOT_IO_HH
#define TSP_COMMON_SNAPSHOT_IO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tsp {

/** FNV-1a offset basis (64-bit). */
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ull;

/**
 * @return the 64-bit FNV-1a hash of @p n bytes at @p data, chained
 * from @p h so multi-buffer content can be folded into one digest.
 */
std::uint64_t fnv1a64(const void *data, std::size_t n,
                      std::uint64_t h = kFnv1aBasis);

/** Append-only little-endian serializer. */
class SnapshotWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        buf_.push_back(static_cast<std::uint8_t>(v));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    /** Doubles travel as their IEEE-754 bit pattern. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u32(bits);
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Raw byte block (single-byte element arrays only). */
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential little-endian deserializer with sticky failure. */
class SnapshotReader
{
  public:
    SnapshotReader(const std::uint8_t *data, std::size_t n)
        : data_(data), size_(n)
    {
    }

    explicit SnapshotReader(const std::vector<std::uint8_t> &buf)
        : SnapshotReader(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[off_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        const std::uint16_t hi = u8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        const std::uint32_t hi = u16();
        return lo | (hi << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    float
    f32()
    {
        const std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool b() { return u8() != 0; }

    void
    bytes(void *out, std::size_t n)
    {
        if (!need(n)) {
            std::memset(out, 0, n);
            return;
        }
        std::memcpy(out, data_ + off_, n);
        off_ += n;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + off_),
                      static_cast<std::size_t>(n));
        off_ += static_cast<std::size_t>(n);
        return s;
    }

    /** @return true when no read overran the buffer. */
    bool ok() const { return !failed_; }

    /** @return true when the buffer was consumed exactly. */
    bool atEnd() const { return ok() && off_ == size_; }

    std::size_t offset() const { return off_; }

  private:
    bool
    need(std::uint64_t n)
    {
        if (failed_ || n > size_ - off_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t off_ = 0;
    bool failed_ = false;
};

} // namespace tsp

#endif // TSP_COMMON_SNAPSHOT_IO_HH
