/**
 * @file
 * Minimal JSON emission for machine-readable results: the serving
 * layer's metrics dump and the benches' BENCH_*.json artifacts. Emit
 * only — the repository never parses JSON, so there is no reader.
 */

#ifndef TSP_COMMON_JSON_HH
#define TSP_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tsp {

/**
 * A streaming JSON writer with an explicit container stack.
 *
 * Usage:
 *   JsonWriter j;
 *   j.beginObject().key("served").value(std::uint64_t{12})
 *    .key("latency").beginObject()
 *        .key("p50_us").value(1.06).endObject()
 *    .endObject();
 *   write j.str() somewhere.
 *
 * str() panics unless every container has been closed, so malformed
 * output cannot escape silently.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emits an object key; the next call must emit its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(bool v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &name, const T &v)
    {
        return key(name).value(v);
    }

    /** @return the finished document; panics if containers are open. */
    const std::string &str() const;

  private:
    void beforeValue();

    std::string out_;
    std::vector<char> stack_; ///< '{' or '[' per open container.
    bool first_ = true;       ///< No element yet in current container.
    bool afterKey_ = false;   ///< A key was emitted, value pending.
};

/** Escapes a string for embedding in JSON (adds no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Writes @p json to @p path (truncating), with a trailing newline.
 * @return false on I/O failure.
 */
bool writeJsonFile(const std::string &path, const std::string &json);

} // namespace tsp

#endif // TSP_COMMON_JSON_HH
