#include "common/fp16.hh"

#include <bit>
#include <cmath>

namespace tsp {

float
Fp16::toFloat() const
{
    const std::uint32_t sign = (bits_ >> 15) & 0x1;
    const std::uint32_t exp = (bits_ >> 10) & 0x1f;
    const std::uint32_t frac = bits_ & 0x3ff;

    std::uint32_t f32;
    if (exp == 0) {
        if (frac == 0) {
            // Signed zero.
            f32 = sign << 31;
        } else {
            // Subnormal: normalize into binary32.
            int e = -1;
            std::uint32_t m = frac;
            while (!(m & 0x400)) {
                m <<= 1;
                ++e;
            }
            m &= 0x3ff;
            const std::uint32_t exp32 = 127 - 15 - e;
            f32 = (sign << 31) | (exp32 << 23) | (m << 13);
        }
    } else if (exp == 0x1f) {
        // Inf / NaN.
        f32 = (sign << 31) | 0x7f800000u | (frac << 13);
    } else {
        const std::uint32_t exp32 = exp - 15 + 127;
        f32 = (sign << 31) | (exp32 << 23) | (frac << 13);
    }
    return std::bit_cast<float>(f32);
}

std::uint16_t
Fp16::fromFloatBits(float value)
{
    const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
    const std::uint32_t sign = (f >> 16) & 0x8000;
    const std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xff);
    const std::uint32_t frac = f & 0x7fffff;

    if (exp == 0xff) {
        // Inf or NaN; preserve NaN-ness with a quiet payload.
        if (frac)
            return static_cast<std::uint16_t>(sign | 0x7e00);
        return static_cast<std::uint16_t>(sign | 0x7c00);
    }

    // Unbiased exponent.
    const std::int32_t e = exp - 127;
    if (e > 15) {
        // Overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00);
    }

    if (e >= -14) {
        // Normal range: round the 23-bit fraction to 10 bits, RNE.
        std::uint32_t mant = frac;
        std::uint32_t out = static_cast<std::uint32_t>(e + 15) << 10;
        out |= mant >> 13;
        const std::uint32_t round_bits = mant & 0x1fff;
        if (round_bits > 0x1000 ||
            (round_bits == 0x1000 && (out & 1))) {
            ++out; // May carry into the exponent: that is correct RNE.
        }
        return static_cast<std::uint16_t>(sign | out);
    }

    if (e < -25) {
        // Too small even for the largest subnormal rounding: signed zero.
        return static_cast<std::uint16_t>(sign);
    }

    // Subnormal: the fp16 fraction is 1.m x 2^(e+24), i.e. the
    // 24-bit significand shifted right by (-e - 1), rounded RNE.
    const std::uint32_t mant = frac | 0x800000;
    const int shift = -e - 1; // 14..24 for e in [-25, -15].
    const std::uint32_t out = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t rounded = out;
    if (rem > half || (rem == half && (out & 1)))
        ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
}

bool
Fp16::isNaN() const
{
    return ((bits_ >> 10) & 0x1f) == 0x1f && (bits_ & 0x3ff) != 0;
}

bool
Fp16::isInf() const
{
    return ((bits_ >> 10) & 0x1f) == 0x1f && (bits_ & 0x3ff) == 0;
}

Fp16
fp16Add(Fp16 a, Fp16 b)
{
    return Fp16(a.toFloat() + b.toFloat());
}

Fp16
fp16Sub(Fp16 a, Fp16 b)
{
    return Fp16(a.toFloat() - b.toFloat());
}

Fp16
fp16Mul(Fp16 a, Fp16 b)
{
    return Fp16(a.toFloat() * b.toFloat());
}

float
fp16MaccToF32(Fp16 a, Fp16 b, float acc)
{
    // Binary16 products are exact in binary32 (11x11-bit significands),
    // so a float fma is not required for bit-exactness of the product.
    return acc + a.toFloat() * b.toFloat();
}

} // namespace tsp
