/**
 * @file
 * Runtime CPU-feature detection for the optional SIMD simulation
 * kernels.
 *
 * The vector kernels (vxm/vxm_kernels_avx2.cc, mxm/mxm_kernels_avx2.cc)
 * are bit-identical to the scalar lane loops, so selecting them is a
 * pure host-speed decision: use them when the host supports AVX2 and
 * nothing forces the scalar path. CI exercises both paths on any host
 * via the TSP_FORCE_SCALAR environment variable (any value other than
 * empty/"0" forces scalar); tests flip the decision in-process with
 * forceScalarKernels().
 */

#ifndef TSP_COMMON_CPU_HH
#define TSP_COMMON_CPU_HH

namespace tsp {

/** @return true when the host CPU supports AVX2 (cached cpuid). */
bool cpuHasAvx2();

/**
 * @return true when the host CPU supports the AVX-512 VNNI dot-
 * product kernels (F+BW+VNNI — the MXM int8 fast path).
 */
bool cpuHasAvx512Vnni();

/**
 * @return true when the host CPU supports AVX-512 Foundation (the
 * 16-wide fp32 kernels — the MXM fp16 fast path needs no VNNI).
 */
bool cpuHasAvx512f();

/**
 * @return true when the AVX2 simulation kernels should be used: the
 * host has AVX2 and neither TSP_FORCE_SCALAR nor a
 * forceScalarKernels(1) override is in effect.
 */
bool simdKernelsEnabled();

/**
 * Overrides the kernel selection (tests / CLI flags): 1 forces the
 * scalar path, 0 forces SIMD-if-supported (ignoring the environment),
 * -1 restores the TSP_FORCE_SCALAR environment default.
 */
void forceScalarKernels(int force);

} // namespace tsp

#endif // TSP_COMMON_CPU_HH
