#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tsp {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char u = static_cast<unsigned char>(ch);
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20)
                out += strformat("\\u%04x", u);
            else
                out += ch;
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    TSP_ASSERT(stack_.empty() || stack_.back() == '[');
    if (!first_)
        out_ += ',';
    first_ = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back('{');
    first_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    TSP_ASSERT(!stack_.empty() && stack_.back() == '{' && !afterKey_);
    stack_.pop_back();
    out_ += '}';
    first_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back('[');
    first_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    TSP_ASSERT(!stack_.empty() && stack_.back() == '[' && !afterKey_);
    stack_.pop_back();
    out_ += ']';
    first_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    TSP_ASSERT(!stack_.empty() && stack_.back() == '{' && !afterKey_);
    if (!first_)
        out_ += ',';
    first_ = false;
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out_ += "null";
        return *this;
    }
    // %.17g round-trips every double.
    out_ += strformat("%.17g", v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    out_ += strformat("%llu", static_cast<unsigned long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    out_ += strformat("%lld", static_cast<long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

const std::string &
JsonWriter::str() const
{
    TSP_ASSERT(stack_.empty() && !afterKey_);
    return out_;
}

bool
writeJsonFile(const std::string &path, const std::string &json)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << json << '\n';
    return static_cast<bool>(out.flush());
}

} // namespace tsp
