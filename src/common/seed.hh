/**
 * @file
 * Deterministic seed derivation for independent RNG streams.
 *
 * The simulator spawns many related random streams from one user
 * seed: per-chip fault injectors inside a pod, per-link C2C upset
 * streams, rebuilt-engine retry seeds, fleet-level pod/worker seeds,
 * load-generator arrival and payload streams. Before this header each
 * site invented its own arithmetic (`seed + i`, `seed ^ tag`,
 * `seed + rebuilds * chips`), which is fragile two ways: linear
 * offsets from different sites can collide (chip 3's seed equals
 * rebuild 3's seed), and closely spaced integer seeds feed Rng's
 * splitmix64 *initializer* with correlated inputs.
 *
 * deriveSeed() replaces all of that with one SplitMix64-style
 * construction: the base seed and every (domain, stream) coordinate
 * pass through the full 64-bit finalizer, so derived seeds are
 * pairwise independent for all practical purposes, stable across
 * platforms (pure integer arithmetic), and collision-free between
 * domains by construction — the domain tag is mixed in before the
 * stream index, so (PodChip, 3) and (EngineRebuild, 3) land in
 * unrelated parts of the seed space.
 *
 * Derivations chain for hierarchies:
 *   pod  = deriveSeed(base, SeedDomain::FleetPod, p);
 *   chip = deriveSeed(pod,  SeedDomain::PodChip,  c);
 */

#ifndef TSP_COMMON_SEED_HH
#define TSP_COMMON_SEED_HH

#include <cstdint>

namespace tsp {

/**
 * What a derived seed is *for*. Each consumer of deriveSeed() uses
 * its own tag so streams from different subsystems can never collide
 * even when their indices do.
 */
enum class SeedDomain : std::uint64_t
{
    PodChip = 1,       ///< Per-member chip fault seed inside a pod.
    EngineRebuild = 2, ///< Rebuilt chip/pod after timeout or MC.
    C2cLink = 3,       ///< Per-link C2C in-flight upset stream.
    FleetPod = 4,      ///< Per-pod base seed in a fleet.
    FleetWorker = 5,   ///< Per-worker engine seed inside a fleet pod.
    Arrival = 6,       ///< Load-generator arrival-process stream.
    Payload = 7,       ///< Load-generator request-payload stream.
    Burst = 8,         ///< Load-generator burst-modulation stream.
};

/**
 * The SplitMix64 output finalizer: a 64-bit bijection with full
 * avalanche (every input bit flips ~half the output bits).
 */
constexpr std::uint64_t
seedMix(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * @return a seed for the @p stream-th member of @p domain, derived
 * from @p base. Pure function: same inputs, same seed, forever — the
 * repository's replay guarantees depend on this never changing.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t base, SeedDomain domain,
           std::uint64_t stream = 0)
{
    // Absorb each coordinate through the finalizer before adding the
    // next, so (base, domain, stream) tuples map injectively enough
    // that no two call sites can collide by linear-offset accident.
    std::uint64_t h = seedMix(base + 0x9e3779b97f4a7c15ull);
    h = seedMix(h ^ (static_cast<std::uint64_t>(domain) *
                     0xd1342543de82ef95ull));
    return seedMix(h ^ (stream * 0x2545f4914f6cdd1dull));
}

} // namespace tsp

#endif // TSP_COMMON_SEED_HH
