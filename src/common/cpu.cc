#include "common/cpu.hh"

#include <cstdlib>

namespace tsp {

namespace {

/** -1: follow TSP_FORCE_SCALAR; 0: SIMD if supported; 1: scalar. */
int forced = -1;

bool
envForceScalar()
{
    static const bool v = [] {
        const char *e = std::getenv("TSP_FORCE_SCALAR");
        return e != nullptr && e[0] != '\0' &&
               !(e[0] == '0' && e[1] == '\0');
    }();
    return v;
}

} // namespace

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool v = __builtin_cpu_supports("avx2");
    return v;
#else
    return false;
#endif
}

bool
cpuHasAvx512Vnni()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool v = __builtin_cpu_supports("avx512f") &&
                          __builtin_cpu_supports("avx512bw") &&
                          __builtin_cpu_supports("avx512vnni");
    return v;
#else
    return false;
#endif
}

bool
cpuHasAvx512f()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool v = __builtin_cpu_supports("avx512f");
    return v;
#else
    return false;
#endif
}

bool
simdKernelsEnabled()
{
    if (forced >= 0)
        return forced == 0 && cpuHasAvx2();
    return !envForceScalar() && cpuHasAvx2();
}

void
forceScalarKernels(int force)
{
    forced = force;
}

} // namespace tsp
