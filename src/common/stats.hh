/**
 * @file
 * Lightweight statistics: named counters and scalar gauges collected by
 * the chip model and reported by benches and the runtime.
 */

#ifndef TSP_COMMON_STATS_HH
#define TSP_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsp {

/**
 * Order-independent accumulator for floating-point samples.
 *
 * Each sample is rounded once to 2^20 fixed point and summed in
 * int64, where addition is exact and associative — the total depends
 * only on the sample multiset, never on accumulation order. A double
 * running sum does not have that property: its rounding depends on
 * the order partial sums grow, so concurrent producers (serving
 * workers, fleet pods) or a container reordering silently change the
 * reported aggregate. Use this for any sum of samples whose order is
 * an artifact of host scheduling rather than of the model.
 *
 * Pick kScaleBits so the per-sample magnitude sits well above the
 * quantum 2^-kScaleBits and the worst-case |sum| stays below
 * 2^(63 - kScaleBits). The default (20 bits: ~1e-6 quantum, ~8.8e12
 * range) suits report-level magnitudes like watts or wall-clock
 * seconds; FineFixedPointSum (40 bits: ~9e-13 quantum, ~8.4e6 range)
 * suits simulated-seconds sums whose samples can be sub-microsecond.
 * Quantities below even the fine quantum (e.g. per-cycle energy in
 * joules, ~1e-7 J at pJ resolution) must stay double, summed in a
 * deterministic order.
 */
template <int kScaleBits = 20>
class BasicFixedPointSum
{
    static_assert(kScaleBits > 0 && kScaleBits < 62);

  public:
    /** Fixed-point units per 1.0 of sample. */
    static constexpr double kScale =
        static_cast<double>(std::int64_t{1} << kScaleBits);

    /** Adds one sample (rounded once to the fixed-point grid). */
    void add(double sample) { fx_ += std::llround(sample * kScale); }

    /** @return the accumulated sum as a double. */
    double value() const { return static_cast<double>(fx_) / kScale; }

    /** @return the raw fixed-point total. */
    std::int64_t raw() const { return fx_; }

    void reset() { fx_ = 0; }

  private:
    std::int64_t fx_ = 0;
};

using FixedPointSum = BasicFixedPointSum<>;
using FineFixedPointSum = BasicFixedPointSum<40>;

/**
 * A registry of named 64-bit counters.
 *
 * Counters are created on first use. The registry is intentionally a
 * plain map: stat updates happen at instruction granularity (not per
 * lane per cycle), so lookup cost is not on the hot path; hot-path
 * counters are owned as raw uint64_t members by their slice models and
 * published into a StatGroup at reporting time.
 */
class StatGroup
{
  public:
    /** Adds @p delta to the counter named @p name. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Sets counter @p name to an absolute value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** @return the counter value, or 0 if never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** @return all counters in name order. */
    const std::map<std::string, std::uint64_t> &
    all() const
    {
        return counters_;
    }

    /** Resets every counter to zero (entries are kept). */
    void reset();

    /** Renders a human-readable table of all counters. */
    std::string toString() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Fixed-bucket histogram for latency/occupancy distributions.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the first bucket.
     * @param hi exclusive upper bound of the last bucket. A degenerate
     *        range (hi <= lo) is widened to one unit above lo, and
     *        zero buckets become one, so a misconfigured histogram
     *        records safely (with every sample counted as overflow)
     *        instead of dividing by a zero bucket width (NaN -> long
     *        cast is UB).
     * @param buckets number of equal-width buckets.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Records one sample (out-of-range samples clamp to end buckets). */
    void record(double sample);

    /** @return number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /**
     * @return arithmetic mean of recorded samples. Samples are summed
     * with a FixedPointSum, so the mean is independent of recording
     * *order* — concurrent recorders (e.g. serving workers finishing
     * batches in host-scheduling order) produce a byte-identical
     * report for the same sample multiset, which a floating-point
     * running sum does not guarantee (its rounding depends on
     * accumulation order).
     */
    double mean() const;

    /** Fixed-point units per 1.0 of sample in the mean sum. */
    static constexpr double kMeanScale = FixedPointSum::kScale;

    /** @return smallest and largest recorded sample. */
    double minSample() const { return min_; }
    double maxSample() const { return max_; }

    /** @return samples recorded below lo (clamped into bucket 0). */
    std::uint64_t underflow() const { return underflow_; }

    /** @return samples recorded at/above hi (clamped into the last
     *  bucket). Nonzero overflow means upper quantiles saturate at
     *  maxSample() rather than resolving within the bucket range. */
    std::uint64_t overflow() const { return overflow_; }

    /**
     * @return the approximate p-quantile (0 <= p <= 1) from buckets,
     * clamped to [minSample, maxSample] so clamped out-of-range
     * samples can never make a quantile report a value no sample had.
     */
    double quantile(double p) const;

    /** @return per-bucket counts. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    FixedPointSum sum_; ///< Order-independent sample sum for mean().
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tsp

#endif // TSP_COMMON_STATS_HH
