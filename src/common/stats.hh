/**
 * @file
 * Lightweight statistics: named counters and scalar gauges collected by
 * the chip model and reported by benches and the runtime.
 */

#ifndef TSP_COMMON_STATS_HH
#define TSP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsp {

/**
 * A registry of named 64-bit counters.
 *
 * Counters are created on first use. The registry is intentionally a
 * plain map: stat updates happen at instruction granularity (not per
 * lane per cycle), so lookup cost is not on the hot path; hot-path
 * counters are owned as raw uint64_t members by their slice models and
 * published into a StatGroup at reporting time.
 */
class StatGroup
{
  public:
    /** Adds @p delta to the counter named @p name. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Sets counter @p name to an absolute value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** @return the counter value, or 0 if never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** @return all counters in name order. */
    const std::map<std::string, std::uint64_t> &
    all() const
    {
        return counters_;
    }

    /** Resets every counter to zero (entries are kept). */
    void reset();

    /** Renders a human-readable table of all counters. */
    std::string toString() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Fixed-bucket histogram for latency/occupancy distributions.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the first bucket.
     * @param hi exclusive upper bound of the last bucket. A degenerate
     *        range (hi <= lo) is widened to one unit above lo, and
     *        zero buckets become one, so a misconfigured histogram
     *        records safely (with every sample counted as overflow)
     *        instead of dividing by a zero bucket width (NaN -> long
     *        cast is UB).
     * @param buckets number of equal-width buckets.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Records one sample (out-of-range samples clamp to end buckets). */
    void record(double sample);

    /** @return number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /**
     * @return arithmetic mean of recorded samples. Samples are summed
     * in fixed point (kMeanScale units), so the mean is independent
     * of recording *order* — concurrent recorders (e.g. serving
     * workers finishing batches in host-scheduling order) produce a
     * byte-identical report for the same sample multiset, which a
     * floating-point running sum does not guarantee (its rounding
     * depends on accumulation order).
     */
    double mean() const;

    /** Fixed-point units per 1.0 of sample in the mean sum. */
    static constexpr double kMeanScale = 1048576.0; // 2^20

    /** @return smallest and largest recorded sample. */
    double minSample() const { return min_; }
    double maxSample() const { return max_; }

    /** @return samples recorded below lo (clamped into bucket 0). */
    std::uint64_t underflow() const { return underflow_; }

    /** @return samples recorded at/above hi (clamped into the last
     *  bucket). Nonzero overflow means upper quantiles saturate at
     *  maxSample() rather than resolving within the bucket range. */
    std::uint64_t overflow() const { return overflow_; }

    /**
     * @return the approximate p-quantile (0 <= p <= 1) from buckets,
     * clamped to [minSample, maxSample] so clamped out-of-range
     * samples can never make a quantile report a value no sample had.
     */
    double quantile(double p) const;

    /** @return per-bucket counts. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::int64_t sumFx_ = 0; ///< Sum in kMeanScale fixed point.
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tsp

#endif // TSP_COMMON_STATS_HH
