/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic inputs to the simulator (synthetic weights, activations,
 * fault injection, baseline cache perturbations) are drawn from this
 * seeded generator so every experiment is exactly reproducible — the
 * repository's determinism claims extend to its own test data.
 */

#ifndef TSP_COMMON_RNG_HH
#define TSP_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace tsp {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Small, fast, and fully deterministic across platforms (no dependence
 * on libstdc++ distribution implementations).
 */
class Rng
{
  public:
    /** Seeds the four state words via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next 64 uniformly distributed bits. */
    std::uint64_t next();

    /** @return a uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return a uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /**
     * @return an approximately standard-normal float (sum of 12
     * uniforms, Irwin-Hall), adequate for synthetic weight tensors.
     */
    float gaussian();

    /** @return a uniform int in [lo, hi] inclusive. */
    int intIn(int lo, int hi);

    /** Internal state word count (snapshot format constant). */
    static constexpr int kStateWords = 4;

    /** @return the raw generator state (snapshot/restore). */
    std::array<std::uint64_t, kStateWords>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Overwrites the generator state (snapshot/restore). */
    void
    setState(const std::array<std::uint64_t, kStateWords> &s)
    {
        for (int i = 0; i < kStateWords; ++i)
            state_[i] = s[static_cast<std::size_t>(i)];
    }

  private:
    std::uint64_t state_[4];
};

} // namespace tsp

#endif // TSP_COMMON_RNG_HH
