#include "common/strutil.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tsp {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(trim(s.substr(start)));
            break;
        }
        out.emplace_back(trim(s.substr(start, pos - start)));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWs(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, long &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string tmp(s);
    char *end = nullptr;
    const long v = std::strtol(tmp.c_str(), &end, 0);
    if (end != tmp.c_str() + tmp.size())
        return false;
    out = v;
    return true;
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace tsp
