/**
 * @file
 * Software IEEE 754 binary16 (half precision) arithmetic.
 *
 * The TSP's MXM operates natively on fp16 operands (two int8 byte-planes
 * in tandem) accumulating into fp32, and the VXM performs fp32 point-wise
 * arithmetic with conversions to/from fp16. This module provides a
 * bit-exact binary16 value type used by those models. Arithmetic is
 * performed by converting to float (binary32), operating, and rounding
 * back with round-to-nearest-even — which is exactly the semantics of a
 * hardware fp16 unit with a single rounding step.
 */

#ifndef TSP_COMMON_FP16_HH
#define TSP_COMMON_FP16_HH

#include <cstdint>

namespace tsp {

/**
 * IEEE 754 binary16 value, stored as its 16-bit pattern.
 *
 * Conversions implement round-to-nearest-even with correct handling of
 * subnormals, infinities and NaN.
 */
class Fp16
{
  public:
    /** Default-constructs +0.0. */
    constexpr Fp16() : bits_(0) {}

    /** Constructs from a float with round-to-nearest-even. */
    explicit Fp16(float value) : bits_(fromFloatBits(value)) {}

    /** Reinterprets a raw 16-bit pattern as an Fp16. */
    static constexpr Fp16
    fromBits(std::uint16_t bits)
    {
        Fp16 h;
        h.bits_ = bits;
        return h;
    }

    /** @return the raw 16-bit pattern. */
    constexpr std::uint16_t bits() const { return bits_; }

    /** Widens to binary32 (exact; every fp16 is representable). */
    float toFloat() const;

    /** @return true if the value is NaN. */
    bool isNaN() const;

    /** @return true if the value is +/- infinity. */
    bool isInf() const;

    /** Bit-pattern equality (NaN == NaN under this operator). */
    constexpr bool
    operator==(const Fp16 &other) const
    {
        return bits_ == other.bits_;
    }

    /** Largest finite fp16 value: 65504. */
    static constexpr Fp16 max() { return fromBits(0x7bff); }

    /** Smallest positive normal fp16 value: 2^-14. */
    static constexpr Fp16 minNormal() { return fromBits(0x0400); }

    /** Positive infinity. */
    static constexpr Fp16 inf() { return fromBits(0x7c00); }

    /** Canonical quiet NaN. */
    static constexpr Fp16 qnan() { return fromBits(0x7e00); }

  private:
    static std::uint16_t fromFloatBits(float value);

    std::uint16_t bits_;
};

/** fp16 addition with a single round-to-nearest-even step. */
Fp16 fp16Add(Fp16 a, Fp16 b);

/** fp16 subtraction with a single round-to-nearest-even step. */
Fp16 fp16Sub(Fp16 a, Fp16 b);

/** fp16 multiplication with a single round-to-nearest-even step. */
Fp16 fp16Mul(Fp16 a, Fp16 b);

/**
 * Fused fp16 multiply with fp32 accumulation, as performed by an MXM
 * supercell: the product and running sum are kept in binary32 so only
 * one rounding step occurs when the final fp32 result is produced.
 */
float fp16MaccToF32(Fp16 a, Fp16 b, float acc);

} // namespace tsp

#endif // TSP_COMMON_FP16_HH
