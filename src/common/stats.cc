#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace tsp {

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << '\n';
    return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    // A zero (or negative) bucket width would make record() divide by
    // zero: NaN cast to long is UB. Widen instead of panicking — the
    // histogram stays usable and the damage is visible as overflow.
    if (!(hi_ > lo_))
        hi_ = lo_ + 1.0;
    if (buckets_.empty())
        buckets_.resize(1, 0);
}

void
Histogram::record(double sample)
{
    if (count_ == 0) {
        min_ = max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    // Integer addition is associative: however concurrent recorders
    // interleave, the same sample multiset sums to the same value
    // (see mean() in the header).
    sum_.add(sample);

    if (sample < lo_)
        ++underflow_;
    else if (sample >= hi_)
        ++overflow_;

    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    auto idx = static_cast<long>((sample - lo_) / width);
    idx = std::clamp<long>(idx, 0, static_cast<long>(buckets_.size()) - 1);
    ++buckets_[static_cast<std::size_t>(idx)];
}

double
Histogram::mean() const
{
    return count_ ? sum_.value() / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double p) const
{
    TSP_ASSERT(p >= 0.0 && p <= 1.0);
    if (count_ == 0)
        return 0.0;
    const auto target =
        static_cast<std::uint64_t>(p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    double q = hi_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target) {
            q = lo_ + (static_cast<double>(i) + 0.5) * width;
            break;
        }
    }
    // Out-of-range samples clamp into the edge buckets, whose
    // midpoints are values no sample may have had; the true order
    // statistic always lies within the observed sample range.
    return std::clamp(q, min_, max_);
}

} // namespace tsp
