#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace tsp {

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << '\n';
    return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    TSP_ASSERT(hi > lo && buckets > 0);
}

void
Histogram::record(double sample)
{
    if (count_ == 0) {
        min_ = max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;

    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    auto idx = static_cast<long>((sample - lo_) / width);
    idx = std::clamp<long>(idx, 0, static_cast<long>(buckets_.size()) - 1);
    ++buckets_[static_cast<std::size_t>(idx)];
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double p) const
{
    TSP_ASSERT(p >= 0.0 && p <= 1.0);
    if (count_ == 0)
        return 0.0;
    const auto target =
        static_cast<std::uint64_t>(p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
    return hi_;
}

} // namespace tsp
