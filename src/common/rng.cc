#include "common/rng.hh"

#include "common/logging.hh"

namespace tsp {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    TSP_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

float
Rng::gaussian()
{
    float sum = 0.0f;
    for (int i = 0; i < 12; ++i)
        sum += static_cast<float>(nextDouble());
    return sum - 6.0f;
}

int
Rng::intIn(int lo, int hi)
{
    TSP_ASSERT(hi >= lo);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(nextBelow(span));
}

} // namespace tsp
