/**
 * @file
 * Physical layout of functional slices along a superlane.
 *
 * The X axis runs West to East across the full chip. Per hemisphere,
 * from the chip bisection outward: VXM (shared, at center) | MEM0 ..
 * MEM43 | SXM | MXM | C2C (paper Figs. 4 and 5; MEM0 is closest to the
 * VXM and MEM43 nearest the SXM). Stream registers sit at each slice
 * position; stream values advance one position per cycle in their
 * direction of flow, so the transit delay between positions i and j is
 * |i - j| cycles (Eq. 4's delta).
 */

#ifndef TSP_ARCH_LAYOUT_HH
#define TSP_ARCH_LAYOUT_HH

#include <string>
#include <vector>

#include "arch/types.hh"

namespace tsp {

/** Kinds of functional slice (Table I groupings). */
enum class SliceKind : std::uint8_t { ICU, MEM, VXM, MXM, SXM, C2C };

/** @return short uppercase name of a slice kind. */
const char *sliceKindName(SliceKind kind);

/** Number of MEM slices per hemisphere. */
inline constexpr int kMemSlicesPerHem = 44;

/** Total MEM slices on chip. */
inline constexpr int kMemSlices = 2 * kMemSlicesPerHem;

/** Words addressable per MEM slice (13-bit address). */
inline constexpr int kMemWordsPerSlice = 1 << 13;

/** SRAM banks per MEM slice (pseudo-dual-port pair). */
inline constexpr int kMemBanks = 2;

/** Per-slice capacity in bytes: 8192 words x 16 B x 20 tiles = 2.5 MiB. */
inline constexpr std::size_t kMemSliceBytes =
    static_cast<std::size_t>(kMemWordsPerSlice) * kWordBytes * kSuperlanes;

/** Total on-chip SRAM: 220 MiB. */
inline constexpr std::size_t kTotalMemBytes = kMemSliceBytes * kMemSlices;

/** Number of independent instruction queues on chip. */
inline constexpr int kNumIcus = 144;

/** MXM MACC planes on chip (two per hemisphere). */
inline constexpr int kMxmPlanes = 4;

/** Rows/cols of one MXM MACC plane. */
inline constexpr int kMxmDim = 320;

/** Vector ALUs per lane (the 4x4 VXM mesh). */
inline constexpr int kVxmAlusPerLane = 16;

/** C2C serial links. */
inline constexpr int kC2cLinks = 16;

/** Lane-rate of one C2C link in Gb/s (x4 lanes at 30 Gb/s). */
inline constexpr double kC2cLinkGbps = 4 * 30.0;

/**
 * X positions of every slice along the superlane.
 *
 * Index scheme (95 positions total):
 *   0            C2C (west edge)
 *   1            MXM west
 *   2            SXM west
 *   3..46        MEM west 43..0 (MEM_W0 adjacent to the VXM)
 *   47           VXM (chip bisection)
 *   48..91       MEM east 0..43
 *   92           SXM east
 *   93           MXM east
 *   94           C2C (east edge)
 */
struct Layout
{
    static constexpr SlicePos c2cWest = 0;
    static constexpr SlicePos mxmWest = 1;
    static constexpr SlicePos sxmWest = 2;
    static constexpr SlicePos vxm = 3 + kMemSlicesPerHem; // 47
    static constexpr SlicePos sxmEast = vxm + kMemSlicesPerHem + 1; // 92
    static constexpr SlicePos mxmEast = sxmEast + 1; // 93
    static constexpr SlicePos c2cEast = mxmEast + 1; // 94
    static constexpr int numPositions = c2cEast + 1; // 95

    /** @return X position of MEM slice @p index in @p hem (0..43). */
    static SlicePos memPos(Hemisphere hem, int index);

    /** @return X position of the SXM in @p hem. */
    static constexpr SlicePos
    sxmPos(Hemisphere hem)
    {
        return hem == Hemisphere::West ? sxmWest : sxmEast;
    }

    /** @return X position of the MXM in @p hem. */
    static constexpr SlicePos
    mxmPos(Hemisphere hem)
    {
        return hem == Hemisphere::West ? mxmWest : mxmEast;
    }

    /** @return X position of the C2C block in @p hem. */
    static constexpr SlicePos
    c2cPos(Hemisphere hem)
    {
        return hem == Hemisphere::West ? c2cWest : c2cEast;
    }

    /** @return which hemisphere a position falls in (VXM -> East). */
    static Hemisphere hemisphereOf(SlicePos pos);

    /** @return transit delay in cycles between two positions (Eq. 4). */
    static Cycle
    transitDelay(SlicePos from, SlicePos to)
    {
        return static_cast<Cycle>(from < to ? to - from : from - to);
    }

    /**
     * @return the direction a stream must flow to travel @p from ->
     * @p to. Equal positions default to East.
     */
    static Direction
    flowDirection(SlicePos from, SlicePos to)
    {
        return to >= from ? Direction::East : Direction::West;
    }

    /** @return human-readable name of the slice at @p pos. */
    static std::string posName(SlicePos pos);
};

/**
 * Identity of one of the 144 instruction queues.
 *
 * The paper states the count but not the decomposition; we model
 * (documented in DESIGN.md section 2):
 *   0..87    MEM   (west 0..43, east 0..43)
 *   88..103  VXM   (16 ALU sequencers, one per mesh position)
 *   104..111 MXM   (4 planes x {weight sequencer, activation sequencer})
 *   112..127 SXM   (2 hemispheres x 8 functional units)
 *   128..143 C2C   (16 links)
 */
struct IcuId
{
    int id = -1;

    static constexpr int memBase = 0;
    static constexpr int vxmBase = 88;
    static constexpr int mxmBase = 104;
    static constexpr int sxmBase = 112;
    static constexpr int c2cBase = 128;

    /** Queue for MEM slice @p index of @p hem. */
    static IcuId mem(Hemisphere hem, int index);

    /** Queue for VXM ALU @p alu (0..15). */
    static IcuId vxmAlu(int alu);

    /** Queue for MXM @p plane (0..3); weight or activation sequencer. */
    static IcuId mxm(int plane, bool weight_sequencer);

    /** Queue for SXM unit @p unit (0..7) of @p hem. */
    static IcuId sxm(Hemisphere hem, int unit);

    /** Queue for C2C link @p link (0..15). */
    static IcuId c2c(int link);

    /** @return which slice kind this queue drives. */
    SliceKind kind() const;

    /** @return X position of the slice this queue drives. */
    SlicePos pos() const;

    /** @return a compact printable name, e.g. "MEM_E12", "VXM3". */
    std::string name() const;

    bool operator==(const IcuId &other) const = default;
};

/** SXM functional unit indices within a hemisphere's SXM complex. */
enum class SxmUnit : std::uint8_t {
    ShiftNorth = 0,
    ShiftSouth = 1,
    Permute = 2,
    Distribute = 3,
    Rotate = 4,
    Transpose0 = 5,
    Transpose1 = 6,
    Select = 7,
};

/** @return printable name of an SXM unit. */
const char *sxmUnitName(SxmUnit unit);

} // namespace tsp

#endif // TSP_ARCH_LAYOUT_HH
