/**
 * @file
 * Runtime-tunable chip configuration.
 *
 * Geometry constants (lanes, slices, banks) are fixed by the
 * architecture and live in arch/types.hh and arch/layout.hh; this
 * struct carries the knobs that vary between experiments: clock
 * frequency, ECC enablement, active vector length (superlane power
 * gating), tracing, and the power-model coefficients.
 */

#ifndef TSP_ARCH_CONFIG_HH
#define TSP_ARCH_CONFIG_HH

#include <cstdint>

#include "arch/types.hh"

namespace tsp {

/**
 * Per-operation energy coefficients in picojoules, used by the
 * activity-based power model (DESIGN.md substitution table: the paper
 * reports measured chip power; we reproduce the per-layer *shape* with
 * activity counting). Values are representative 14nm estimates.
 */
struct PowerParams
{
    /** Energy of one int8 MACC in the MXM. */
    double mxmMaccPj = 0.4;

    /** Energy of one 32-bit VXM ALU operation. */
    double vxmOpPj = 1.2;

    /** Energy of one byte moved one stream-register hop. */
    double streamHopPj = 0.06;

    /** Energy of one 16-byte SRAM word access (read or write). */
    double sramWordPj = 12.0;

    /** Energy of one byte switched through the SXM. */
    double sxmBytePj = 0.25;

    /** Energy of one instruction dispatch at an ICU. */
    double icuDispatchPj = 8.0;

    /** Static leakage + clock-tree power per active superlane, watts. */
    double superlaneStaticW = 1.5;

    /** Chip-wide uncore static power, watts. */
    double uncoreStaticW = 15.0;
};

/** Top-level simulator configuration. */
struct ChipConfig
{
    /** Core clock in Hz. The paper analyzes at 1 GHz (nominal 900 MHz). */
    double clockHz = 1.0e9;

    /**
     * Number of powered superlanes (1..20). Vector length is
     * 16 x activeSuperlanes; unused superlanes are clock-gated
     * (paper II.F, energy proportionality).
     */
    int activeSuperlanes = kSuperlanes;

    /** Generate/check SECDED codes on streams and SRAM. */
    bool eccEnabled = true;

    /** Record a cycle-by-cycle power trace (costs memory). */
    bool powerTraceEnabled = false;

    /**
     * Panic when an instruction samples a stream register with no
     * valid value flowing through it. The hardware would silently
     * consume garbage; a mis-scheduled intercept is always a compiler
     * bug, so the default is to fail loudly.
     */
    bool strictStreams = true;

    /** Record per-instruction execution events for schedule dumps. */
    bool traceEnabled = false;

    /**
     * Let run()/runBounded() fast-forward over provably idle spans
     * (the event-driven core). Results are bit-identical to per-cycle
     * stepping — same cycle counts, stats, memory and stream contents
     * — because the static schedule makes every idle span provable.
     * Disable to force the legacy per-cycle stepper (differential
     * testing); runs with powerTraceEnabled fall back to per-cycle
     * stepping automatically so the trace keeps one entry per cycle.
     */
    bool fastForwardEnabled = true;

    /** Power-model coefficients. */
    PowerParams power{};

    /** @return active vector length in bytes. */
    int
    vectorLength() const
    {
        return activeSuperlanes * kLanesPerSuperlane;
    }

    /** @return seconds per core clock cycle. */
    double
    cyclePeriodSec() const
    {
        return 1.0 / clockHz;
    }

    /** Validates ranges; calls fatal() on user error. */
    void validate() const;
};

} // namespace tsp

#endif // TSP_ARCH_CONFIG_HH
