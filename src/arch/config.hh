/**
 * @file
 * Runtime-tunable chip configuration.
 *
 * Geometry constants (lanes, slices, banks) are fixed by the
 * architecture and live in arch/types.hh and arch/layout.hh; this
 * struct carries the knobs that vary between experiments: clock
 * frequency, ECC enablement, active vector length (superlane power
 * gating), tracing, and the power-model coefficients.
 */

#ifndef TSP_ARCH_CONFIG_HH
#define TSP_ARCH_CONFIG_HH

#include <cstdint>
#include <vector>

#include "arch/types.hh"

namespace tsp {

/**
 * One explicitly scheduled soft error: when the chip clock reaches
 * @p cycle, flip one bit of the stored SRAM word at (@p slice,
 * @p addr). The bit is addressed in SECDED-codeword space so check
 * bits are injectable too. Scheduled faults are *events* to the
 * event-driven core: fast-forward never jumps over one, so per-cycle
 * and fast-forwarded runs observe the identical upset history.
 */
struct FaultEvent
{
    /** Chip cycle at which the bit flips. */
    Cycle cycle = 0;

    /** Global MEM slice index: W0..43 are 0..43, E0..43 are 44..87. */
    int slice = 0;

    /** Word address within the slice. */
    MemAddr addr = 0;

    /** Superlane word (ECC chunk) 0..19 within the 320-byte word. */
    int chunk = 0;

    /** Codeword bit: 0..127 flip a data bit, 128..136 a check bit. */
    int bit = 0;
};

/**
 * Deterministic fault-injection configuration (paper II.D exercises:
 * SECDED covers SRAM soft errors and datapath upsets; this is how we
 * create them on demand). All randomness is drawn from one seeded
 * generator *per access*, never per cycle, so the upset sequence is a
 * pure function of the access sequence — identical under per-cycle
 * stepping and event-driven fast-forward.
 */
struct FaultConfig
{
    /** Seed for the per-chip fault RNG. */
    std::uint64_t seed = 0x5eedf001u;

    /** P(strike) per timed MEM read: transient read-path upset. */
    double memReadRate = 0.0;

    /** P(strike) per timed MEM write, before the consumer-side check. */
    double memWriteRate = 0.0;

    /** P(strike) per operand consumed at any slice's stream port. */
    double streamRate = 0.0;

    /**
     * P(strike) per 320-byte vector in C2C link flight, applied on
     * the receiver side as the vector lands in the link's elastic
     * buffer. Each link direction draws from its own RNG stream
     * (seeded from @ref seed and the link index), so the upset
     * history is a pure function of the per-link arrival sequence —
     * identical under lock-step pod stepping and the bounded
     * fast-forward pod scheduler, whatever order the chips are
     * advanced in.
     */
    double c2cRate = 0.0;

    /**
     * Fraction of strikes that flip two distinct bits of the same
     * 128+9-bit chunk — uncorrectable by construction, the trigger
     * for machine checks. The remainder flip a single (correctable)
     * bit anywhere in the chunk, check bits included.
     */
    double doubleBitFraction = 0.0;

    /** Explicit, reproducible (cycle, site, bit) fault list. */
    std::vector<FaultEvent> events;

    /** @return true when any per-access rate is positive. */
    bool
    haveRates() const
    {
        return memReadRate > 0.0 || memWriteRate > 0.0 ||
               streamRate > 0.0 || c2cRate > 0.0;
    }

    /** @return true when this config can inject anything at all. */
    bool enabled() const { return haveRates() || !events.empty(); }
};

/**
 * Per-operation energy coefficients in picojoules, used by the
 * activity-based power model (DESIGN.md substitution table: the paper
 * reports measured chip power; we reproduce the per-layer *shape* with
 * activity counting). Values are representative 14nm estimates.
 */
struct PowerParams
{
    /** Energy of one int8 MACC in the MXM. */
    double mxmMaccPj = 0.4;

    /** Energy of one 32-bit VXM ALU operation. */
    double vxmOpPj = 1.2;

    /** Energy of one byte moved one stream-register hop. */
    double streamHopPj = 0.06;

    /** Energy of one 16-byte SRAM word access (read or write). */
    double sramWordPj = 12.0;

    /** Energy of one byte switched through the SXM. */
    double sxmBytePj = 0.25;

    /** Energy of one instruction dispatch at an ICU. */
    double icuDispatchPj = 8.0;

    /** Static leakage + clock-tree power per active superlane, watts. */
    double superlaneStaticW = 1.5;

    /** Chip-wide uncore static power, watts. */
    double uncoreStaticW = 15.0;
};

/** Top-level simulator configuration. */
struct ChipConfig
{
    /** Core clock in Hz. The paper analyzes at 1 GHz (nominal 900 MHz). */
    double clockHz = 1.0e9;

    /**
     * Number of powered superlanes (1..20). Vector length is
     * 16 x activeSuperlanes; unused superlanes are clock-gated
     * (paper II.F, energy proportionality).
     */
    int activeSuperlanes = kSuperlanes;

    /** Generate/check SECDED codes on streams and SRAM. */
    bool eccEnabled = true;

    /** Record a cycle-by-cycle power trace (costs memory). */
    bool powerTraceEnabled = false;

    /**
     * Panic when an instruction samples a stream register with no
     * valid value flowing through it. The hardware would silently
     * consume garbage; a mis-scheduled intercept is always a compiler
     * bug, so the default is to fail loudly.
     */
    bool strictStreams = true;

    /** Record per-instruction execution events for schedule dumps. */
    bool traceEnabled = false;

    /**
     * Let run()/runBounded() fast-forward over provably idle spans
     * (the event-driven core). Results are bit-identical to per-cycle
     * stepping — same cycle counts, stats, memory and stream contents
     * — because the static schedule makes every idle span provable.
     * Disable to force the legacy per-cycle stepper (differential
     * testing); runs with powerTraceEnabled fall back to per-cycle
     * stepping automatically so the trace keeps one entry per cycle.
     */
    bool fastForwardEnabled = true;

    /** Power-model coefficients. */
    PowerParams power{};

    /**
     * Deterministic fault injection (off by default). With a rate or
     * an event list set, the chip flips bits in SRAM words, consumed
     * stream operands and check bits; every injected upset is either
     * corrected (single-bit) or raises a chip-level machine check
     * (double-bit), never silently consumed.
     */
    FaultConfig fault{};

    /** @return active vector length in bytes. */
    int
    vectorLength() const
    {
        return activeSuperlanes * kLanesPerSuperlane;
    }

    /** @return seconds per core clock cycle. */
    double
    cyclePeriodSec() const
    {
        return 1.0 / clockHz;
    }

    /** Validates ranges; calls fatal() on user error. */
    void validate() const;
};

} // namespace tsp

#endif // TSP_ARCH_CONFIG_HH
