#include "arch/layout.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tsp {

const char *
sliceKindName(SliceKind kind)
{
    switch (kind) {
      case SliceKind::ICU:
        return "ICU";
      case SliceKind::MEM:
        return "MEM";
      case SliceKind::VXM:
        return "VXM";
      case SliceKind::MXM:
        return "MXM";
      case SliceKind::SXM:
        return "SXM";
      case SliceKind::C2C:
        return "C2C";
    }
    return "?";
}

SlicePos
Layout::memPos(Hemisphere hem, int index)
{
    TSP_ASSERT(index >= 0 && index < kMemSlicesPerHem);
    if (hem == Hemisphere::East)
        return vxm + 1 + index;
    // West: MEM_W0 is adjacent to the VXM, increasing outward (west).
    return vxm - 1 - index;
}

Hemisphere
Layout::hemisphereOf(SlicePos pos)
{
    return pos < vxm ? Hemisphere::West : Hemisphere::East;
}

std::string
Layout::posName(SlicePos pos)
{
    if (pos == c2cWest)
        return "C2C_W";
    if (pos == c2cEast)
        return "C2C_E";
    if (pos == mxmWest)
        return "MXM_W";
    if (pos == mxmEast)
        return "MXM_E";
    if (pos == sxmWest)
        return "SXM_W";
    if (pos == sxmEast)
        return "SXM_E";
    if (pos == vxm)
        return "VXM";
    if (pos > sxmWest && pos < vxm)
        return strformat("MEM_W%d", vxm - 1 - pos);
    if (pos > vxm && pos < sxmEast)
        return strformat("MEM_E%d", pos - vxm - 1);
    return strformat("X%d", pos);
}

IcuId
IcuId::mem(Hemisphere hem, int index)
{
    TSP_ASSERT(index >= 0 && index < kMemSlicesPerHem);
    const int base = hem == Hemisphere::West ? 0 : kMemSlicesPerHem;
    return IcuId{memBase + base + index};
}

IcuId
IcuId::vxmAlu(int alu)
{
    TSP_ASSERT(alu >= 0 && alu < kVxmAlusPerLane);
    return IcuId{vxmBase + alu};
}

IcuId
IcuId::mxm(int plane, bool weight_sequencer)
{
    TSP_ASSERT(plane >= 0 && plane < kMxmPlanes);
    return IcuId{mxmBase + plane * 2 + (weight_sequencer ? 0 : 1)};
}

IcuId
IcuId::sxm(Hemisphere hem, int unit)
{
    TSP_ASSERT(unit >= 0 && unit < 8);
    const int base = hem == Hemisphere::West ? 0 : 8;
    return IcuId{sxmBase + base + unit};
}

IcuId
IcuId::c2c(int link)
{
    TSP_ASSERT(link >= 0 && link < kC2cLinks);
    return IcuId{c2cBase + link};
}

SliceKind
IcuId::kind() const
{
    TSP_ASSERT(id >= 0 && id < kNumIcus);
    if (id < vxmBase)
        return SliceKind::MEM;
    if (id < mxmBase)
        return SliceKind::VXM;
    if (id < sxmBase)
        return SliceKind::MXM;
    if (id < c2cBase)
        return SliceKind::SXM;
    return SliceKind::C2C;
}

SlicePos
IcuId::pos() const
{
    switch (kind()) {
      case SliceKind::MEM: {
        const int rel = id - memBase;
        const Hemisphere hem =
            rel < kMemSlicesPerHem ? Hemisphere::West : Hemisphere::East;
        return Layout::memPos(hem, rel % kMemSlicesPerHem);
      }
      case SliceKind::VXM:
        return Layout::vxm;
      case SliceKind::MXM: {
        // Planes 0,1 are west; planes 2,3 east.
        const int plane = (id - mxmBase) / 2;
        return Layout::mxmPos(plane < 2 ? Hemisphere::West
                                        : Hemisphere::East);
      }
      case SliceKind::SXM: {
        const int rel = id - sxmBase;
        return Layout::sxmPos(rel < 8 ? Hemisphere::West
                                      : Hemisphere::East);
      }
      case SliceKind::C2C: {
        // Even links exit west, odd links east (modeling choice).
        const int link = id - c2cBase;
        return Layout::c2cPos(link % 2 == 0 ? Hemisphere::West
                                            : Hemisphere::East);
      }
      default:
        break;
    }
    panic("IcuId::pos: bad id %d", id);
}

std::string
IcuId::name() const
{
    switch (kind()) {
      case SliceKind::MEM: {
        const int rel = id - memBase;
        const bool west = rel < kMemSlicesPerHem;
        return strformat("MEM_%c%d", west ? 'W' : 'E',
                         rel % kMemSlicesPerHem);
      }
      case SliceKind::VXM:
        return strformat("VXM%d", id - vxmBase);
      case SliceKind::MXM: {
        const int rel = id - mxmBase;
        return strformat("MXM%d_%s", rel / 2, rel % 2 == 0 ? "W" : "A");
      }
      case SliceKind::SXM: {
        const int rel = id - sxmBase;
        const bool west = rel < 8;
        return strformat("SXM_%c_%s", west ? 'W' : 'E',
                         sxmUnitName(static_cast<SxmUnit>(rel % 8)));
      }
      case SliceKind::C2C:
        return strformat("C2C%d", id - c2cBase);
      default:
        break;
    }
    return "?";
}

const char *
sxmUnitName(SxmUnit unit)
{
    switch (unit) {
      case SxmUnit::ShiftNorth:
        return "SHN";
      case SxmUnit::ShiftSouth:
        return "SHS";
      case SxmUnit::Permute:
        return "PRM";
      case SxmUnit::Distribute:
        return "DST";
      case SxmUnit::Rotate:
        return "ROT";
      case SxmUnit::Transpose0:
        return "TR0";
      case SxmUnit::Transpose1:
        return "TR1";
      case SxmUnit::Select:
        return "SEL";
    }
    return "?";
}

} // namespace tsp
