#include "arch/config.hh"

#include "arch/layout.hh"
#include "common/logging.hh"

namespace tsp {

namespace {

void
checkRate(const char *name, double rate)
{
    if (rate < 0.0 || rate > 1.0) {
        fatal("ChipConfig: fault.%s must be a probability in [0, 1] "
              "(got %g)",
              name, rate);
    }
}

} // namespace

void
ChipConfig::validate() const
{
    if (clockHz <= 0)
        fatal("ChipConfig: clockHz must be positive (got %g)", clockHz);
    if (activeSuperlanes < 1 || activeSuperlanes > kSuperlanes) {
        fatal("ChipConfig: activeSuperlanes must be in [1, %d] (got %d)",
              kSuperlanes, activeSuperlanes);
    }
    checkRate("memReadRate", fault.memReadRate);
    checkRate("memWriteRate", fault.memWriteRate);
    checkRate("streamRate", fault.streamRate);
    checkRate("c2cRate", fault.c2cRate);
    checkRate("doubleBitFraction", fault.doubleBitFraction);
    for (const FaultEvent &e : fault.events) {
        if (e.slice < 0 || e.slice >= kMemSlices ||
            e.addr >= static_cast<MemAddr>(kMemWordsPerSlice) ||
            e.chunk < 0 || e.chunk >= kSuperlanes || e.bit < 0 ||
            e.bit >= kWordBytes * 8 + kEccBits) {
            fatal("ChipConfig: fault event out of range (slice %d, "
                  "addr 0x%x, chunk %d, bit %d)",
                  e.slice, e.addr, e.chunk, e.bit);
        }
    }
}

} // namespace tsp
