#include "arch/config.hh"

#include "common/logging.hh"

namespace tsp {

void
ChipConfig::validate() const
{
    if (clockHz <= 0)
        fatal("ChipConfig: clockHz must be positive (got %g)", clockHz);
    if (activeSuperlanes < 1 || activeSuperlanes > kSuperlanes) {
        fatal("ChipConfig: activeSuperlanes must be in [1, %d] (got %d)",
              kSuperlanes, activeSuperlanes);
    }
}

} // namespace tsp
