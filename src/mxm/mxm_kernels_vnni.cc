/**
 * @file
 * AVX-512 VNNI kernel for the MXM int8 activation broadcast.
 *
 * vpdpbusd computes 64 u8*s8 products per instruction with exact
 * int32 accumulation (no int16 saturation, unlike maddubs), but one
 * operand must be unsigned. Activations are signed, so they are
 * biased into u8 by XOR 0x80 (== +128) and the per-row excess
 * 128 * sum(w[r][*]) is subtracted after the reduction. Every
 * intermediate fits int32 (|dot| <= 320*255*127 < 2^31) and the
 * correction is done in uint32 arithmetic, so the result equals the
 * scalar loop's wrapping int32 sum bit-for-bit.
 *
 * This is the only TU compiled with -mavx512vnni; callers gate on
 * tsp::simdKernelsEnabled() && tsp::cpuHasAvx512Vnni().
 */

#include "mxm/mxm_kernels.hh"

#if (defined(__x86_64__) || defined(__i386__)) && \
    defined(__AVX512VNNI__)

#include <immintrin.h>

namespace tsp::simd {

namespace {

/**
 * Sum of the sixteen int32 elements, wrapping mod 2^32. Spills to the
 * stack instead of a shuffle tree: gcc 12's 512->256 downcast
 * intrinsics expand through _mm256_undefined_si256 and trip
 * -Wmaybe-uninitialized, and the hsum runs once per 320-wide row so
 * its cost is noise next to the dpbusd chain.
 */
inline std::int32_t
hsumEpi32(__m512i v)
{
    alignas(64) std::int32_t lanes[16];
    _mm512_store_si512(lanes, v);
    std::uint32_t s = 0;
    for (int i = 0; i < 16; ++i)
        s += static_cast<std::uint32_t>(lanes[i]);
    return static_cast<std::int32_t>(s);
}

} // namespace

bool
mxmAbcInt8Vnni(const std::int8_t *w, int stride,
               const std::uint8_t *act, const std::int32_t *row_sums,
               std::int32_t *acc, int n, bool accumulate)
{
    if (n % 64 != 0 || n > 320)
        return false;

    // Bias the activations once; every row reuses them.
    const int blocks = n / 64;
    __m512i a[5];
    const __m512i bias = _mm512_set1_epi8(-128);
    for (int i = 0; i < blocks; ++i) {
        a[i] = _mm512_xor_si512(
            _mm512_loadu_si512(
                reinterpret_cast<const void *>(act + 64 * i)),
            bias);
    }

    // Four independent accumulator chains per group of rows keep the
    // dot-product unit busy across vpdpbusd's latency.
    for (int r = 0; r < n; r += 4) {
        const std::int8_t *w0 =
            w + static_cast<std::size_t>(r) * stride;
        const std::int8_t *w1 = w0 + stride;
        const std::int8_t *w2 = w1 + stride;
        const std::int8_t *w3 = w2 + stride;
        __m512i s0 = _mm512_setzero_si512();
        __m512i s1 = _mm512_setzero_si512();
        __m512i s2 = _mm512_setzero_si512();
        __m512i s3 = _mm512_setzero_si512();
        for (int i = 0; i < blocks; ++i) {
            const __m512i av = a[i];
            s0 = _mm512_dpbusd_epi32(
                s0, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w0 + 64 * i)));
            s1 = _mm512_dpbusd_epi32(
                s1, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w1 + 64 * i)));
            s2 = _mm512_dpbusd_epi32(
                s2, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w2 + 64 * i)));
            s3 = _mm512_dpbusd_epi32(
                s3, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w3 + 64 * i)));
        }
        std::int32_t sums[4];
        sums[0] = hsumEpi32(s0);
        sums[1] = hsumEpi32(s1);
        sums[2] = hsumEpi32(s2);
        sums[3] = hsumEpi32(s3);
        for (int k = 0; k < 4; ++k) {
            const auto dot = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(sums[k]) -
                (static_cast<std::uint32_t>(row_sums[r + k]) << 7));
            if (accumulate)
                acc[r + k] += dot;
            else
                acc[r + k] = dot;
        }
    }
    return true;
}

bool
mxmRowSumsInt8Vnni(const std::int8_t *w, int stride, int n,
                   std::int32_t *out)
{
    if (n % 64 != 0 || n > 320)
        return false;

    const int blocks = n / 64;
    const __m512i ones = _mm512_set1_epi8(1);
    for (int r = 0; r < n; ++r) {
        const std::int8_t *wrow =
            w + static_cast<std::size_t>(r) * stride;
        __m512i s = _mm512_setzero_si512();
        for (int i = 0; i < blocks; ++i) {
            s = _mm512_dpbusd_epi32(
                s, ones,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(wrow + 64 * i)));
        }
        out[r] = hsumEpi32(s);
    }
    return true;
}

} // namespace tsp::simd

#else // !x86 or the TU was built without -mavx512vnni

namespace tsp::simd {

bool
mxmAbcInt8Vnni(const std::int8_t *, int, const std::uint8_t *,
               const std::int32_t *, std::int32_t *, int, bool)
{
    return false;
}

bool
mxmRowSumsInt8Vnni(const std::int8_t *, int, int, std::int32_t *)
{
    return false;
}

} // namespace tsp::simd

#endif
