/**
 * @file
 * AVX-512 VNNI kernel for the MXM int8 activation broadcast.
 *
 * vpdpbusd computes 64 u8*s8 products per instruction with exact
 * int32 accumulation (no int16 saturation, unlike maddubs), but one
 * operand must be unsigned. Activations are signed, so they are
 * biased into u8 by XOR 0x80 (== +128) and the per-row excess
 * 128 * sum(w[r][*]) is subtracted after the reduction. Every
 * intermediate fits int32 (|dot| <= 320*255*127 < 2^31) and the
 * correction is done in uint32 arithmetic, so the result equals the
 * scalar loop's wrapping int32 sum bit-for-bit.
 *
 * This is the only TU compiled with -mavx512vnni; callers gate on
 * tsp::simdKernelsEnabled() && tsp::cpuHasAvx512Vnni().
 */

#include "mxm/mxm_kernels.hh"

#if (defined(__x86_64__) || defined(__i386__)) && \
    defined(__AVX512VNNI__)

#include <immintrin.h>

namespace tsp::simd {

namespace {

/**
 * Sum of the sixteen int32 elements, wrapping mod 2^32. Spills to the
 * stack instead of a shuffle tree: gcc 12's 512->256 downcast
 * intrinsics expand through _mm256_undefined_si256 and trip
 * -Wmaybe-uninitialized, and this variant only runs once per weight
 * install (row sums), so its cost is noise.
 */
inline std::int32_t
hsumEpi32(__m512i v)
{
    alignas(64) std::int32_t lanes[16];
    _mm512_store_si512(lanes, v);
    std::uint32_t s = 0;
    for (int i = 0; i < 16; ++i)
        s += static_cast<std::uint32_t>(lanes[i]);
    return static_cast<std::int32_t>(s);
}

/**
 * Transposed reduction of four 16-lane int32 accumulators into one
 * __m128i of [sum(s0), sum(s1), sum(s2), sum(s3)], wrapping mod 2^32.
 * Integer adds are associative mod 2^32, so the shuffle-tree order is
 * as exact as any other. This runs once per four rows on the hot ABC
 * path — the scalar spill variant above costs ~20 ops plus a
 * store-forward stall per row and dominated the kernel.
 */
inline __m128i
hsum4Epi32(__m512i s0, __m512i s1, __m512i s2, __m512i s3)
{
    const __m256i q0 = _mm256_add_epi32(
        _mm512_extracti64x4_epi64(s0, 0),
        _mm512_extracti64x4_epi64(s0, 1));
    const __m256i q1 = _mm256_add_epi32(
        _mm512_extracti64x4_epi64(s1, 0),
        _mm512_extracti64x4_epi64(s1, 1));
    const __m256i q2 = _mm256_add_epi32(
        _mm512_extracti64x4_epi64(s2, 0),
        _mm512_extracti64x4_epi64(s2, 1));
    const __m256i q3 = _mm256_add_epi32(
        _mm512_extracti64x4_epi64(s3, 0),
        _mm512_extracti64x4_epi64(s3, 1));
    // hadd interleaves per 128-bit lane: after two rounds each lane
    // holds one partial per source, and the cross-lane add finishes.
    const __m256i h01 = _mm256_hadd_epi32(q0, q1);
    const __m256i h23 = _mm256_hadd_epi32(q2, q3);
    const __m256i h = _mm256_hadd_epi32(h01, h23);
    return _mm_add_epi32(_mm256_extracti128_si256(h, 0),
                         _mm256_extracti128_si256(h, 1));
}

} // namespace

bool
mxmAbcInt8Vnni(const std::int8_t *w, int stride,
               const std::uint8_t *act, const std::int32_t *row_sums,
               std::int32_t *acc, int n, bool accumulate)
{
    if (n % 64 != 0 || n > 320)
        return false;

    // Bias the activations once; every row reuses them.
    const int blocks = n / 64;
    __m512i a[5];
    const __m512i bias = _mm512_set1_epi8(-128);
    for (int i = 0; i < blocks; ++i) {
        a[i] = _mm512_xor_si512(
            _mm512_loadu_si512(
                reinterpret_cast<const void *>(act + 64 * i)),
            bias);
    }

    // Four independent accumulator chains per group of rows keep the
    // dot-product unit busy across vpdpbusd's latency.
    for (int r = 0; r < n; r += 4) {
        const std::int8_t *w0 =
            w + static_cast<std::size_t>(r) * stride;
        const std::int8_t *w1 = w0 + stride;
        const std::int8_t *w2 = w1 + stride;
        const std::int8_t *w3 = w2 + stride;
        __m512i s0 = _mm512_setzero_si512();
        __m512i s1 = _mm512_setzero_si512();
        __m512i s2 = _mm512_setzero_si512();
        __m512i s3 = _mm512_setzero_si512();
        for (int i = 0; i < blocks; ++i) {
            const __m512i av = a[i];
            s0 = _mm512_dpbusd_epi32(
                s0, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w0 + 64 * i)));
            s1 = _mm512_dpbusd_epi32(
                s1, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w1 + 64 * i)));
            s2 = _mm512_dpbusd_epi32(
                s2, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w2 + 64 * i)));
            s3 = _mm512_dpbusd_epi32(
                s3, av,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(w3 + 64 * i)));
        }
        // [dot0..dot3] = transposed sums minus the u8-bias excess
        // 128 * row_sum; epi32 adds/subs wrap exactly like the scalar
        // uint32 arithmetic they replace.
        const __m128i sums = hsum4Epi32(s0, s1, s2, s3);
        const __m128i excess = _mm_slli_epi32(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row_sums + r)),
            7);
        __m128i dot = _mm_sub_epi32(sums, excess);
        if (accumulate) {
            dot = _mm_add_epi32(
                dot, _mm_loadu_si128(
                         reinterpret_cast<const __m128i *>(acc + r)));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + r), dot);
    }
    return true;
}

bool
mxmRowSumsInt8Vnni(const std::int8_t *w, int stride, int n,
                   std::int32_t *out)
{
    if (n % 64 != 0 || n > 320)
        return false;

    const int blocks = n / 64;
    const __m512i ones = _mm512_set1_epi8(1);
    for (int r = 0; r < n; ++r) {
        const std::int8_t *wrow =
            w + static_cast<std::size_t>(r) * stride;
        __m512i s = _mm512_setzero_si512();
        for (int i = 0; i < blocks; ++i) {
            s = _mm512_dpbusd_epi32(
                s, ones,
                _mm512_loadu_si512(
                    reinterpret_cast<const void *>(wrow + 64 * i)));
        }
        out[r] = hsumEpi32(s);
    }
    return true;
}

} // namespace tsp::simd

#else // !x86 or the TU was built without -mavx512vnni

namespace tsp::simd {

bool
mxmAbcInt8Vnni(const std::int8_t *, int, const std::uint8_t *,
               const std::int32_t *, std::int32_t *, int, bool)
{
    return false;
}

bool
mxmRowSumsInt8Vnni(const std::int8_t *, int, int, std::int32_t *)
{
    return false;
}

} // namespace tsp::simd

#endif
