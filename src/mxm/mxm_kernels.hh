/**
 * @file
 * AVX2 kernel for the MXM plane's int8 activation broadcast
 * (MxmPlane::stepAbc) — the hottest loop in whole-chip simulation of
 * dense networks (320x320 MACs per active plane per cycle).
 *
 * The kernel is bit-identical to the scalar loop: int32 accumulation
 * wraps mod 2^32, so the reduction order is immaterial and the
 * vectorized horizontal sum produces exactly the scalar result.
 * Callers gate on tsp::simdKernelsEnabled() (common/cpu.hh); the
 * definitions live in mxm_kernels_avx2.cc, the only TU in the target
 * compiled with -mavx2.
 */

#ifndef TSP_MXM_MXM_KERNELS_HH
#define TSP_MXM_MXM_KERNELS_HH

#include <cstdint>

namespace tsp::simd {

/**
 * One ABC cycle's dot products: for each row r < n,
 *   acc[r] (+)= sum_{c<n} w[r*stride + c] * (int8)act[c]
 * (accumulate selects += vs =), exactly as MxmPlane::stepAbc's scalar
 * loop computes it.
 *
 * @return false when this (n) has no vector path (n % 32 != 0) — the
 * caller must run the scalar loop instead.
 */
bool mxmAbcInt8Avx2(const std::int8_t *w, int stride,
                    const std::uint8_t *act, std::int32_t *acc, int n,
                    bool accumulate);

/**
 * AVX-512 VNNI variant of mxmAbcInt8Avx2: vpdpbusd needs one unsigned
 * operand, so activations are biased by +128 (a XOR 0x80) and the
 * per-row correction 128 * sum(w[r][*]) — precomputed by
 * mxmRowSumsInt8Vnni at weight install — is subtracted, which is
 * exact in wrapping int32 arithmetic. Callers additionally gate on
 * tsp::cpuHasAvx512Vnni(); definitions live in mxm_kernels_vnni.cc,
 * the only TU compiled with -mavx512vnni.
 *
 * @return false when (n) has no vector path (n % 64 != 0).
 */
bool mxmAbcInt8Vnni(const std::int8_t *w, int stride,
                    const std::uint8_t *act,
                    const std::int32_t *row_sums, std::int32_t *acc,
                    int n, bool accumulate);

/**
 * Fills @p out[r] = sum_{c<n} w[r*stride + c] for r < n (the bias
 * correction mxmAbcInt8Vnni needs). Same gating and n % 64 == 0
 * contract as the kernel.
 *
 * @return false when (n) has no vector path.
 */
bool mxmRowSumsInt8Vnni(const std::int8_t *w, int stride, int n,
                        std::int32_t *out);

/**
 * One fp16-mode ABC cycle's row dot products: for each row r < n,
 *   acc[r] (+)= sum_{c<n} wCols[c*stride + r] * act[c]
 * over the column-major fp32 weight image MxmPlane::buildF16WeightCols
 * prepares (exact fp16->fp32 conversion), with @p act the converted
 * activations.
 *
 * Bit-identical to MxmPlane::stepAbc's scalar fp16 loop: each row's
 * sum starts at 0.0f and adds products column-ascending, one
 * multiply rounding and one add rounding per term (vmulps + vaddps,
 * never FMA — a fused product would skip the multiply's rounding and
 * diverge). Vectorizing *across rows* (the column-major image makes
 * rows adjacent) leaves every row's rounding sequence exactly the
 * scalar one, so infinities, denormals and signed zeros propagate
 * identically. The one exception is the *payload* of a NaN result:
 * when a term mixes NaNs, which payload survives depends on mul/add
 * operand order, which the compiler is free to commute — it is not
 * pinned even between two compilations of the scalar loop. A NaN
 * result stays a NaN result on every path; only its payload bits are
 * unspecified (as in the fp16 numerics contract generally).
 *
 * @return false when (n) has no vector path (AVX2 tier: n % 8 != 0).
 * Definitions live in mxm_kernels_avx2.cc / mxm_kernels_f16.cc, the
 * only TUs compiled with the matching ISA flags; callers gate on
 * simdKernelsEnabled() (+ cpuHasAvx512f() for the 512-bit tier).
 */
bool mxmAbcF16Avx2(const float *wCols, int stride, const float *act,
                   float *acc, int n, bool accumulate);

/** AVX-512F tier of mxmAbcF16Avx2 (16 rows per vector; n % 16). */
bool mxmAbcF16Avx512(const float *wCols, int stride, const float *act,
                     float *acc, int n, bool accumulate);

} // namespace tsp::simd

#endif // TSP_MXM_MXM_KERNELS_HH
