#include "mxm/mxm_kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace tsp::simd {

namespace {

/** Sum of the eight int32 elements, wrapping mod 2^32. */
inline std::int32_t
hsumEpi32(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e)); // [2,3,0,1]
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1)); // [1,0,3,2]
    return _mm_cvtsi128_si32(s);
}

} // namespace

bool
mxmAbcInt8Avx2(const std::int8_t *w, int stride,
               const std::uint8_t *act, std::int32_t *acc, int n,
               bool accumulate)
{
    if (n % 32 != 0 || n > 320)
        return false;

    // Widen the activations once; every row reuses them. 320 lanes
    // is 10 chunks of 32 int8, each widened to two int16 vectors.
    __m256i a16[20];
    const int chunks = n / 32;
    for (int i = 0; i < chunks; ++i) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(act + 32 * i));
        a16[2 * i] = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(a));
        a16[2 * i + 1] =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(a, 1));
    }

    for (int r = 0; r < n; ++r) {
        const std::int8_t *wrow =
            w + static_cast<std::size_t>(r) * stride;
        __m256i sum = _mm256_setzero_si256();
        for (int i = 0; i < chunks; ++i) {
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(wrow + 32 * i));
            const __m256i wlo =
                _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
            const __m256i whi = _mm256_cvtepi8_epi16(
                _mm256_extracti128_si256(wv, 1));
            // Products fit int16*int16 -> int32 pairs exactly; int32
            // adds wrap just like the scalar accumulation.
            sum = _mm256_add_epi32(sum,
                                   _mm256_madd_epi16(wlo, a16[2 * i]));
            sum = _mm256_add_epi32(
                sum, _mm256_madd_epi16(whi, a16[2 * i + 1]));
        }
        const std::int32_t s = hsumEpi32(sum);
        if (accumulate)
            acc[r] += s;
        else
            acc[r] = s;
    }
    return true;
}

bool
mxmAbcF16Avx2(const float *wCols, int stride, const float *act,
              float *acc, int n, bool accumulate)
{
    if (n % 8 != 0 || n > 320)
        return false;

    // Eight rows at a time over the column-major weight image; mul
    // and add rounded separately (no FMA) in the scalar loop's
    // column order — see mxm_kernels.hh for the bit-identity
    // contract.
    for (int r = 0; r < n; r += 8) {
        __m256 sum = _mm256_setzero_ps();
        const float *wc = wCols + r;
        for (int c = 0; c < n; ++c) {
            const __m256 w = _mm256_loadu_ps(
                wc + static_cast<std::size_t>(c) * stride);
            const __m256 p = _mm256_mul_ps(w, _mm256_set1_ps(act[c]));
            sum = _mm256_add_ps(sum, p);
        }
        if (accumulate) {
            const __m256 prev = _mm256_loadu_ps(acc + r);
            sum = _mm256_add_ps(prev, sum);
        }
        _mm256_storeu_ps(acc + r, sum);
    }
    return true;
}

} // namespace tsp::simd

#else // !x86

namespace tsp::simd {

bool
mxmAbcInt8Avx2(const std::int8_t *, int, const std::uint8_t *,
               std::int32_t *, int, bool)
{
    return false;
}

bool
mxmAbcF16Avx2(const float *, int, const float *, float *, int, bool)
{
    return false;
}

} // namespace tsp::simd

#endif
