/**
 * @file
 * One 320x320 MACC plane of the matrix execution module (paper III.D,
 * Fig. 7). The chip has four: two per hemisphere.
 *
 * A plane holds a staging weight buffer filled by LW from streams (16
 * streams x 16 B per supercell row per cycle), an installed weight
 * array committed by IW, a bank of vector accumulators written as
 * activations stream through under ABC control, and an ACC sequencer
 * that drains accumulators onto int32/fp32 result stream groups.
 *
 * int8 activations produce int32 accumulations; fp16 mode runs two
 * byte-planes in tandem (modeled as a plane-local mode) accumulating
 * in fp32 with a single rounding step at the end.
 */

#ifndef TSP_MXM_MXM_PLANE_HH
#define TSP_MXM_MXM_PLANE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "stream/stream_io.hh"

namespace tsp {

/**
 * Accumulator bank depth per plane, in 320-element vectors.
 *
 * The paper does not publish this constant; 64 bounds the reorder
 * window the compiler may accumulate into before draining (DESIGN.md
 * lists this as a modeled parameter). Convolution lowering tiles its
 * output windows to this depth.
 */
inline constexpr std::uint32_t kMxmAccDepth = 64;

/** One of the four 320x320 multiply-accumulate planes. */
class MxmPlane
{
  public:
    /**
     * @param plane plane number 0..3 (0,1 west; 2,3 east).
     */
    MxmPlane(int plane, const ChipConfig &cfg, StreamFabric &fabric);

    /** Dispatches Lw / Iw / Abc / Acc to this plane at cycle @p now. */
    void issue(const Instruction &inst, Cycle now);

    /**
     * Advances the plane's ABC/ACC sequencers one cycle. Must be
     * called every cycle after dispatch so a window's first activation
     * is consumed in its issue cycle.
     */
    void tick(Cycle now);

    /** @return plane number 0..3. */
    int plane() const { return plane_; }

    /** @return X position (west or east MXM). */
    SlicePos
    pos() const
    {
        return Layout::mxmPos(plane_ < 2 ? Hemisphere::West
                                         : Hemisphere::East);
    }

    /** @return cumulative MACC operations (power/roofline input). */
    std::uint64_t maccOps() const { return maccOps_; }

    /** @return cycles with an active ABC window (occupancy). */
    std::uint64_t activeCycles() const { return activeCycles_; }

    /** @return weight bytes loaded into the LW buffer. */
    std::uint64_t weightBytesLoaded() const { return weightBytes_; }

    /** @return true if an ABC window is streaming right now. */
    bool abcActive() const { return abc_.active; }

    /** @return true if an ACC drain is running right now. */
    bool accActive() const { return acc_.active; }

    /** @return true if either sequencer needs a tick() this cycle. */
    bool busy() const { return abc_.active || acc_.active; }

    /**
     * @return the next cycle >= @p now at which this plane does work:
     * @p now while an ABC window or ACC drain is streaming (both
     * sequencers consume/produce every cycle until exhausted), else
     * kNoEventCycle — an idle plane only re-activates at an Lw / Iw /
     * Abc / Acc dispatch, which is the dispatching queue's event.
     */
    Cycle
    nextActiveCycle(Cycle now) const
    {
        return busy() ? now : kNoEventCycle;
    }

    /** @return the stream access point (CSR counters). */
    const StreamIo &io() const { return io_; }

    /** Test hook: directly reads an installed weight (row, col). */
    std::int8_t installedWeight(int row, int col) const;

    /** Test hook: reads the fp16 installed weight bits. */
    std::uint16_t installedWeightF16(int row, int col) const;

    /**
     * Serializes weight buffers (staging + installed), sequencer
     * state, the accumulator banks with their generation stamps, and
     * counters. The lazy VNNI row-sum cache is excluded — it is
     * recomputed deterministically from the installed weights.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restores plane state (invalidates the row-sum cache). */
    void loadState(SnapshotReader &r);

  private:
    void executeLw(const Instruction &inst, Cycle now);
    void executeIw(const Instruction &inst, Cycle now);
    void executeAbc(const Instruction &inst, Cycle now);
    void executeAcc(const Instruction &inst, Cycle now);

    void stepAbc(Cycle now);
    void stepAcc(Cycle now);

    /** Rebuilds winstFCols_ from winstF_ (lazy, post-IW). */
    void buildF16WeightCols();

    const ChipConfig &cfg_;
    StreamIo io_;
    int plane_;

    /** Weight staging (LW) and installed (IW) arrays, row-major. */
    std::vector<std::int8_t> wbuf_;
    std::vector<std::int8_t> winst_;
    /** fp16 bit patterns when in fp16 mode. */
    std::vector<std::uint16_t> wbufF_;
    std::vector<std::uint16_t> winstF_;
    /**
     * Per-row sums of the installed int8 weights, the bias correction
     * for the VNNI kernel (mxm_kernels.hh). Recomputed lazily after
     * each IW, and only on hosts taking the VNNI path.
     */
    std::vector<std::int32_t> winstRowSum_;
    bool rowSumsValid_ = false;
    /**
     * Column-major fp32 image of the installed fp16 weights
     * (winstFCols_[c * kMxmDim + r] = toFloat(winstF_[r][c])), the
     * operand layout the fp16 SIMD kernels need to vectorize across
     * rows while keeping each row's scalar rounding order. Like the
     * row-sum cache: rebuilt lazily after each IW, derived state
     * excluded from snapshots, and fp16->fp32 conversion is exact so
     * the image carries the installed bits losslessly.
     */
    std::vector<float> winstFCols_;
    bool fWeightsValid_ = false;
    int fillRow_ = 0;
    DType weightType_ = DType::Int8;
    DType installedType_ = DType::Int8;

    /** Activation window sequencer. */
    struct AbcState
    {
        bool active = false;
        StreamRef src{};
        std::uint32_t remaining = 0;
        std::uint32_t index = 0;
        bool accumulate = false;
        DType atype = DType::Int8;
    };
    AbcState abc_{};

    /** Result drain sequencer. */
    struct AccState
    {
        bool active = false;
        StreamRef dst{};
        std::uint32_t remaining = 0;
        std::uint32_t index = 0;
    };
    AccState acc_{};

    /** Accumulator bank: int32 and fp32 views (mode-selected). */
    std::array<std::array<std::int32_t, kMxmDim>, kMxmAccDepth> accI_{};
    std::array<std::array<float, kMxmDim>, kMxmAccDepth> accF_{};

    /**
     * Drain-consistency tracking: every overwriting ABC starts a new
     * generation; ACC must emit accumulators of the generation that
     * was current when it issued, or the schedule interleaved two
     * chunks incorrectly.
     */
    std::uint64_t generation_ = 0;
    std::uint64_t accGen_ = 0;
    std::array<std::uint64_t, kMxmAccDepth> indexGen_{};

    std::uint64_t maccOps_ = 0;
    std::uint64_t activeCycles_ = 0;
    std::uint64_t weightBytes_ = 0;
};

} // namespace tsp

#endif // TSP_MXM_MXM_PLANE_HH
