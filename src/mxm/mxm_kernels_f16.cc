/**
 * @file
 * AVX-512F kernel for the MXM plane's fp16-mode activation broadcast
 * (see mxm_kernels.hh for the bit-identity contract). This is the
 * only TU compiled with -mavx512f; selection is a runtime cpuid
 * decision (common/cpu.hh).
 */

#include "mxm/mxm_kernels.hh"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX512F__)

#include <immintrin.h>

namespace tsp::simd {

bool
mxmAbcF16Avx512(const float *wCols, int stride, const float *act,
                float *acc, int n, bool accumulate)
{
    if (n % 16 != 0 || n > 320)
        return false;

    // Sixteen rows at a time: the column-major weight image makes
    // one column's rows contiguous, so each c-step is a load, a
    // broadcast multiply, and an add — mul and add rounded
    // separately, exactly the scalar term order per row.
    for (int r = 0; r < n; r += 16) {
        __m512 sum = _mm512_setzero_ps();
        const float *wc = wCols + r;
        for (int c = 0; c < n; ++c) {
            const __m512 w = _mm512_loadu_ps(
                wc + static_cast<std::size_t>(c) * stride);
            const __m512 p = _mm512_mul_ps(w, _mm512_set1_ps(act[c]));
            sum = _mm512_add_ps(sum, p);
        }
        if (accumulate) {
            const __m512 prev = _mm512_loadu_ps(acc + r);
            sum = _mm512_add_ps(prev, sum);
        }
        _mm512_storeu_ps(acc + r, sum);
    }
    return true;
}

} // namespace tsp::simd

#else // !x86 or no AVX-512F support in the toolchain

namespace tsp::simd {

bool
mxmAbcF16Avx512(const float *, int, const float *, float *, int, bool)
{
    return false;
}

} // namespace tsp::simd

#endif
