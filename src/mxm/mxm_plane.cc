#include "mxm/mxm_plane.hh"

#include "common/cpu.hh"
#include "common/fp16.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "mxm/mxm_kernels.hh"

namespace tsp {

MxmPlane::MxmPlane(int plane, const ChipConfig &cfg,
                   StreamFabric &fabric)
    : cfg_(cfg), io_(cfg, fabric, strformat("MXM%d", plane)),
      plane_(plane),
      wbuf_(static_cast<std::size_t>(kMxmDim) * kMxmDim, 0),
      winst_(static_cast<std::size_t>(kMxmDim) * kMxmDim, 0),
      wbufF_(static_cast<std::size_t>(kMxmDim) * kMxmDim, 0),
      winstF_(static_cast<std::size_t>(kMxmDim) * kMxmDim, 0),
      winstRowSum_(static_cast<std::size_t>(kMxmDim), 0),
      winstFCols_(static_cast<std::size_t>(kMxmDim) * kMxmDim, 0.0f)
{
    TSP_ASSERT(plane >= 0 && plane < kMxmPlanes);
}

std::int8_t
MxmPlane::installedWeight(int row, int col) const
{
    TSP_ASSERT(row >= 0 && row < kMxmDim && col >= 0 && col < kMxmDim);
    return winst_[static_cast<std::size_t>(row) * kMxmDim +
                  static_cast<std::size_t>(col)];
}

std::uint16_t
MxmPlane::installedWeightF16(int row, int col) const
{
    TSP_ASSERT(row >= 0 && row < kMxmDim && col >= 0 && col < kMxmDim);
    return winstF_[static_cast<std::size_t>(row) * kMxmDim +
                   static_cast<std::size_t>(col)];
}

void
MxmPlane::issue(const Instruction &inst, Cycle now)
{
    switch (inst.op) {
      case Opcode::Lw:
        executeLw(inst, now);
        return;
      case Opcode::Iw:
        executeIw(inst, now);
        return;
      case Opcode::Abc:
        executeAbc(inst, now);
        return;
      case Opcode::Acc:
        executeAcc(inst, now);
        return;
      default:
        panic("MXM%d: bad opcode %s", plane_, opcodeName(inst.op));
    }
}

void
MxmPlane::executeLw(const Instruction &inst, Cycle now)
{
    (void)now;
    const int gs = inst.groupSize;
    TSP_ASSERT(gs >= 1 && gs <= kStreamsPerDir);

    if (fillRow_ == 0)
        weightType_ = inst.dtype;
    else if (inst.dtype != weightType_)
        panic("MXM%d: mixed weight dtypes in one LW burst", plane_);

    if (weightType_ == DType::Int8) {
        if (fillRow_ + gs > kMxmDim) {
            panic("MXM%d: LW overflows weight buffer (row %d + %d)",
                  plane_, fillRow_, gs);
        }
        const Vec320 *vp[kStreamsPerDir];
        Vec320 tmp[kStreamsPerDir];
        if (!io_.replayConsumeRun(inst.srcA, pos(), vp,
                                  static_cast<std::size_t>(gs))) {
            for (int k = 0; k < gs; ++k) {
                StreamRef s = inst.srcA;
                s.id = static_cast<StreamId>(inst.srcA.id + k);
                tmp[k] = io_.consume(s, pos());
                vp[k] = &tmp[k];
            }
        }
        for (int k = 0; k < gs; ++k) {
            const Vec320 &v = *vp[k];
            const int row = fillRow_ + k;
            // Bit-preserving u8 -> int8 row copy (the cast the scalar
            // loop did is a no-op on the representation).
            __builtin_memcpy(
                &wbuf_[static_cast<std::size_t>(row) * kMxmDim],
                v.bytes.data(), kMxmDim);
            weightBytes_ += kMxmDim;
        }
        fillRow_ += gs;
    } else if (weightType_ == DType::Fp16) {
        TSP_ASSERT(gs % 2 == 0);
        const int rows = gs / 2;
        if (fillRow_ + rows > kMxmDim) {
            panic("MXM%d: LW overflows weight buffer (row %d + %d)",
                  plane_, fillRow_, rows);
        }
        const Vec320 *vp[kStreamsPerDir];
        Vec320 tmp[kStreamsPerDir];
        if (!io_.replayConsumeRun(inst.srcA, pos(), vp,
                                  static_cast<std::size_t>(gs))) {
            for (int k = 0; k < gs; ++k) {
                StreamRef s = inst.srcA;
                s.id = static_cast<StreamId>(inst.srcA.id + k);
                tmp[k] = io_.consume(s, pos());
                vp[k] = &tmp[k];
            }
        }
        for (int i = 0; i < rows; ++i) {
            const Vec320 &vlo = *vp[2 * i];
            const Vec320 &vhi = *vp[2 * i + 1];
            const int row = fillRow_ + i;
            for (int c = 0; c < kMxmDim; ++c) {
                const auto bits = static_cast<std::uint16_t>(
                    vlo.bytes[static_cast<std::size_t>(c)] |
                    (static_cast<std::uint16_t>(
                         vhi.bytes[static_cast<std::size_t>(c)])
                     << 8));
                wbufF_[static_cast<std::size_t>(row) * kMxmDim +
                       static_cast<std::size_t>(c)] = bits;
            }
            weightBytes_ += 2 * kMxmDim;
        }
        fillRow_ += rows;
    } else {
        panic("MXM%d: weights must be int8 or fp16, got %s", plane_,
              dtypeName(weightType_));
    }
}

void
MxmPlane::executeIw(const Instruction &inst, Cycle now)
{
    (void)inst;
    (void)now;
    winst_ = wbuf_;
    winstF_ = wbufF_;
    installedType_ = weightType_;
    rowSumsValid_ = false;
    fWeightsValid_ = false;
    fillRow_ = 0;
}

void
MxmPlane::buildF16WeightCols()
{
    for (int r = 0; r < kMxmDim; ++r) {
        const std::uint16_t *wrow =
            &winstF_[static_cast<std::size_t>(r) * kMxmDim];
        for (int c = 0; c < kMxmDim; ++c) {
            winstFCols_[static_cast<std::size_t>(c) * kMxmDim +
                        static_cast<std::size_t>(r)] =
                Fp16::fromBits(wrow[c]).toFloat();
        }
    }
    fWeightsValid_ = true;
}

void
MxmPlane::executeAbc(const Instruction &inst, Cycle now)
{
    (void)now;
    if (abc_.active) {
        panic("MXM%d: ABC issued while a window is active (scheduler "
              "bug)",
              plane_);
    }
    TSP_ASSERT(inst.imm1 > 0);
    if (inst.imm1 > kMxmAccDepth) {
        panic("MXM%d: ABC window of %u exceeds accumulator depth %u",
              plane_, inst.imm1, kMxmAccDepth);
    }
    abc_.active = true;
    if (!(inst.flags & Instruction::kFlagAccumulate))
        ++generation_;
    abc_.src = inst.srcA;
    abc_.remaining = inst.imm1;
    abc_.index = 0;
    abc_.accumulate = inst.flags & Instruction::kFlagAccumulate;
    abc_.atype = inst.dtype;
    if (abc_.atype == DType::Fp16 && installedType_ != DType::Fp16) {
        panic("MXM%d: fp16 activations over %s weights", plane_,
              dtypeName(installedType_));
    }
}

void
MxmPlane::executeAcc(const Instruction &inst, Cycle now)
{
    (void)now;
    if (acc_.active) {
        panic("MXM%d: ACC issued while a drain is active (scheduler "
              "bug)",
              plane_);
    }
    TSP_ASSERT(inst.imm1 > 0 && inst.imm1 <= kMxmAccDepth);
    acc_.active = true;
    accGen_ = generation_;
    acc_.dst = inst.dst;
    acc_.remaining = inst.imm1;
    acc_.index = 0;
}

void
MxmPlane::stepAbc(Cycle now)
{
    if (!abc_.active)
        return;
    ++activeCycles_;

    const int n = cfg_.vectorLength();
    const std::uint32_t idx = abc_.index;

    // Stamp the accumulator with the current window generation; the
    // drain checks it reads its own generation (see stepAcc).
    indexGen_[idx] = generation_;

    if (abc_.atype == DType::Int8) {
        Vec320 scratch;
        const Vec320 &a = *io_.consumeRef(abc_.src, pos(), scratch);
        auto &acc = accI_[idx];
        // Dot products against installed rows: y[r] = sum_c W[r][c]*a[c].
        // Kernel ladder: AVX-512 VNNI (needs the per-install row
        // sums), then AVX2, then scalar. Every tier computes the
        // identical wrapping int32 sums; a kernel declines lane
        // counts it can't chunk and the next tier takes over.
        bool done = false;
        if (simdKernelsEnabled()) {
            if (cpuHasAvx512Vnni()) {
                if (!rowSumsValid_) {
                    rowSumsValid_ = simd::mxmRowSumsInt8Vnni(
                        winst_.data(), kMxmDim, n,
                        winstRowSum_.data());
                }
                done = rowSumsValid_ &&
                       simd::mxmAbcInt8Vnni(
                           winst_.data(), kMxmDim, a.bytes.data(),
                           winstRowSum_.data(), acc.data(), n,
                           abc_.accumulate);
            }
            if (!done) {
                done = simd::mxmAbcInt8Avx2(winst_.data(), kMxmDim,
                                            a.bytes.data(),
                                            acc.data(), n,
                                            abc_.accumulate);
            }
        }
        if (!done) {
            for (int r = 0; r < n; ++r) {
                const std::int8_t *wrow =
                    &winst_[static_cast<std::size_t>(r) * kMxmDim];
                std::int32_t sum = 0;
                for (int c = 0; c < n; ++c) {
                    sum += static_cast<std::int32_t>(wrow[c]) *
                           static_cast<std::int8_t>(
                               a.bytes[static_cast<std::size_t>(c)]);
                }
                if (abc_.accumulate)
                    acc[static_cast<std::size_t>(r)] += sum;
                else
                    acc[static_cast<std::size_t>(r)] = sum;
            }
        }
    } else if (abc_.atype == DType::Fp16) {
        const Vec320 *vp[2];
        Vec320 tmpLo;
        Vec320 tmpHi;
        if (!io_.replayConsumeRun(abc_.src, pos(), vp, 2)) {
            StreamRef lo = abc_.src;
            StreamRef hi = abc_.src;
            hi.id = static_cast<StreamId>(lo.id + 1);
            tmpLo = io_.consume(lo, pos());
            tmpHi = io_.consume(hi, pos());
            vp[0] = &tmpLo;
            vp[1] = &tmpHi;
        }
        const Vec320 &vlo = *vp[0];
        const Vec320 &vhi = *vp[1];
        float act[kMxmDim];
        for (int c = 0; c < n; ++c) {
            const auto bits = static_cast<std::uint16_t>(
                vlo.bytes[static_cast<std::size_t>(c)] |
                (static_cast<std::uint16_t>(
                     vhi.bytes[static_cast<std::size_t>(c)])
                 << 8));
            act[c] = Fp16::fromBits(bits).toFloat();
        }
        auto &acc = accF_[idx];
        // Row dot products in fp32: y[r] = sum_c w[r][c]*act[c],
        // summed column-ascending from 0.0f with a separate rounding
        // for the multiply and the add (no FMA). The SIMD tiers
        // vectorize *across rows*, so each row's rounding sequence is
        // exactly this scalar loop's — bit-identical including NaN
        // and inf propagation.
        bool done = false;
        if (simdKernelsEnabled()) {
            if (!fWeightsValid_)
                buildF16WeightCols();
            if (cpuHasAvx512f()) {
                done = simd::mxmAbcF16Avx512(
                    winstFCols_.data(), kMxmDim, act, accF_[idx].data(),
                    n, abc_.accumulate);
            }
            if (!done) {
                done = simd::mxmAbcF16Avx2(winstFCols_.data(), kMxmDim,
                                           act, accF_[idx].data(), n,
                                           abc_.accumulate);
            }
        }
        if (!done) {
            for (int r = 0; r < n; ++r) {
                const std::uint16_t *wrow =
                    &winstF_[static_cast<std::size_t>(r) * kMxmDim];
                float sum = 0.0f;
                for (int c = 0; c < n; ++c)
                    sum += Fp16::fromBits(wrow[c]).toFloat() * act[c];
                if (abc_.accumulate)
                    acc[static_cast<std::size_t>(r)] += sum;
                else
                    acc[static_cast<std::size_t>(r)] = sum;
            }
        }
    } else {
        panic("MXM%d: unsupported activation dtype %s", plane_,
              dtypeName(abc_.atype));
    }
    (void)now;

    maccOps_ +=
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
    ++abc_.index;
    if (--abc_.remaining == 0)
        abc_.active = false;
}

void
MxmPlane::stepAcc(Cycle now)
{
    if (!acc_.active)
        return;

    if (indexGen_[acc_.index] != accGen_) {
        panic("MXM%d: ACC drains accumulator %u of generation %llu "
              "but expected %llu (overwritten before drain — "
              "scheduler bug)",
              plane_, acc_.index,
              static_cast<unsigned long long>(indexGen_[acc_.index]),
              static_cast<unsigned long long>(accGen_));
    }

    const Cycle when = now + opTiming(Opcode::Acc).dFunc;
    const int n = cfg_.vectorLength();

    TSP_ASSERT(acc_.dst.id % 4 == 0 &&
               acc_.dst.id + 4 <= kStreamsPerDir);

    // Replay: build the four byte-planes directly in their tape
    // arena slots (claimed in the recorded produce order k = 0..3);
    // nothing is copied. Slots are liveness-reused, so clear them
    // first — a live run's out[] starts from zeroed vectors.
    Vec320 local[4];
    Vec320 *out[4];
    bool replay = false;
    for (int k = 0; k < 4; ++k) {
        if (Vec320 *dst = io_.replayProduceDest()) {
            *dst = Vec320{};
            out[k] = dst;
            replay = true;
        } else {
            out[k] = &local[k];
        }
    }

    if (installedType_ == DType::Fp16) {
        const auto &acc = accF_[acc_.index];
        for (int r = 0; r < n; ++r) {
            std::uint32_t u;
            const float f = acc[static_cast<std::size_t>(r)];
            __builtin_memcpy(&u, &f, sizeof(u));
            for (int k = 0; k < 4; ++k) {
                out[k]->bytes[static_cast<std::size_t>(r)] =
                    static_cast<std::uint8_t>((u >> (8 * k)) & 0xff);
            }
        }
    } else {
        const auto &acc = accI_[acc_.index];
        for (int r = 0; r < n; ++r) {
            const auto u = static_cast<std::uint32_t>(
                acc[static_cast<std::size_t>(r)]);
            for (int k = 0; k < 4; ++k) {
                out[k]->bytes[static_cast<std::size_t>(r)] =
                    static_cast<std::uint8_t>((u >> (8 * k)) & 0xff);
            }
        }
    }

    if (!replay) {
        for (int k = 0; k < 4; ++k) {
            StreamRef s = acc_.dst;
            s.id = static_cast<StreamId>(acc_.dst.id + k);
            io_.produce(s, pos(), local[k], when);
        }
    }

    ++acc_.index;
    if (--acc_.remaining == 0)
        acc_.active = false;
}

void
MxmPlane::tick(Cycle now)
{
    stepAbc(now);
    stepAcc(now);
}

void
MxmPlane::saveState(SnapshotWriter &w) const
{
    io_.saveState(w);
    w.bytes(wbuf_.data(), wbuf_.size());
    w.bytes(winst_.data(), winst_.size());
    for (const auto v : wbufF_)
        w.u16(v);
    for (const auto v : winstF_)
        w.u16(v);
    w.i32(fillRow_);
    w.u8(static_cast<std::uint8_t>(weightType_));
    w.u8(static_cast<std::uint8_t>(installedType_));

    w.b(abc_.active);
    w.u8(abc_.src.id);
    w.u8(abc_.src.dir == Direction::West ? 1 : 0);
    w.u32(abc_.remaining);
    w.u32(abc_.index);
    w.b(abc_.accumulate);
    w.u8(static_cast<std::uint8_t>(abc_.atype));

    w.b(acc_.active);
    w.u8(acc_.dst.id);
    w.u8(acc_.dst.dir == Direction::West ? 1 : 0);
    w.u32(acc_.remaining);
    w.u32(acc_.index);

    for (const auto &row : accI_) {
        for (const auto v : row)
            w.i32(v);
    }
    for (const auto &row : accF_) {
        for (const auto v : row)
            w.f32(v);
    }
    w.u64(generation_);
    w.u64(accGen_);
    for (const auto g : indexGen_)
        w.u64(g);

    w.u64(maccOps_);
    w.u64(activeCycles_);
    w.u64(weightBytes_);
}

void
MxmPlane::loadState(SnapshotReader &r)
{
    io_.loadState(r);
    r.bytes(wbuf_.data(), wbuf_.size());
    r.bytes(winst_.data(), winst_.size());
    for (auto &v : wbufF_)
        v = r.u16();
    for (auto &v : winstF_)
        v = r.u16();
    fillRow_ = r.i32();
    weightType_ = static_cast<DType>(r.u8());
    installedType_ = static_cast<DType>(r.u8());
    // The VNNI bias cache and the fp16 column image are derived
    // state; recompute on demand.
    rowSumsValid_ = false;
    fWeightsValid_ = false;

    abc_.active = r.b();
    abc_.src.id = r.u8();
    abc_.src.dir = r.u8() ? Direction::West : Direction::East;
    abc_.remaining = r.u32();
    abc_.index = r.u32();
    abc_.accumulate = r.b();
    abc_.atype = static_cast<DType>(r.u8());

    acc_.active = r.b();
    acc_.dst.id = r.u8();
    acc_.dst.dir = r.u8() ? Direction::West : Direction::East;
    acc_.remaining = r.u32();
    acc_.index = r.u32();

    for (auto &row : accI_) {
        for (auto &v : row)
            v = r.i32();
    }
    for (auto &row : accF_) {
        for (auto &v : row)
            v = r.f32();
    }
    generation_ = r.u64();
    accGen_ = r.u64();
    for (auto &g : indexGen_)
        g = r.u64();

    maccOps_ = r.u64();
    activeCycles_ = r.u64();
    weightBytes_ = r.u64();
}

} // namespace tsp
