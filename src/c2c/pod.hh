/**
 * @file
 * A pod of TSPs — the paper's scale-out story (II item 6: the 3.84
 * Tb/s of pin bandwidth "can be flexibly partitioned to support
 * high-radix interconnection networks of TSPs for large-scale
 * systems").
 *
 * The pod wires chips into a ring (link 1 of chip i to link 0 of
 * chip i+1) and steps them in lock-step on one core-clock domain.
 * Because every chip is deterministic and the links are deskewed
 * once, multi-chip programs need no handshakes: the compiler
 * schedules Sends on one chip and Receives on another to the exact
 * arrival cycle.
 */

#ifndef TSP_C2C_POD_HH
#define TSP_C2C_POD_HH

#include <memory>
#include <vector>

#include "sim/chip.hh"

namespace tsp {

/** A ring of lock-stepped TSP chips. */
class Pod
{
  public:
    /** Ring link assignments on every chip. */
    static constexpr int kRightLink = 1; ///< To chip (i+1) % n.
    static constexpr int kLeftLink = 0;  ///< From chip (i-1+n) % n.

    /**
     * @param chips number of chips (>= 2).
     * @param wire_latency link flight time in cycles.
     */
    Pod(int chips, Cycle wire_latency, ChipConfig cfg = {});

    /** @return chip @p i. */
    Chip &chip(int i);

    /** @return the number of chips. */
    int size() const { return static_cast<int>(chips_.size()); }

    /** @return the ring wire latency. */
    Cycle wireLatency() const { return wireLatency_; }

    /** Advances every chip one cycle (lock-step). */
    void stepAll();

    /**
     * Runs until every chip retires, or @p max_cycles.
     * @return the final cycle count.
     */
    Cycle runAll(Cycle max_cycles = 10'000'000);

    /** @return true once every chip is done. */
    bool allDone() const;

  private:
    std::vector<std::unique_ptr<Chip>> chips_;
    Cycle wireLatency_;
};

} // namespace tsp

#endif // TSP_C2C_POD_HH
