/**
 * @file
 * A pod of TSPs — the paper's scale-out story (II item 6: the 3.84
 * Tb/s of pin bandwidth "can be flexibly partitioned to support
 * high-radix interconnection networks of TSPs for large-scale
 * systems").
 *
 * The pod wires chips into a ring (link 1 of chip i to link 0 of
 * chip i+1) on one core-clock domain. Because every chip is
 * deterministic and the links are deskewed once, multi-chip programs
 * need no handshakes: the compiler schedules Sends on one chip and
 * Receives on another to the exact arrival cycle.
 *
 * Two execution modes, bit-identical in cycles, stats, energy and
 * memory contents:
 *
 *  - stepAll()/runAll(): strict lock-step, one cycle per chip per
 *    call — the reference semantics.
 *  - runAllBounded(): conservative-lookahead scheduling. A chip may
 *    run ahead of an unretired ring neighbour by at most
 *    kC2cSerializationCycles + wireLatency cycles — the minimum
 *    flight time of any vector the neighbour could still send — so
 *    every arrival is delivered before the receiver simulates its
 *    cycle (Chandy–Misra lookahead with no null messages, valid
 *    because every Send/Receive is statically scheduled). Each chip
 *    advances through its window with the event-driven fast-forward
 *    core, which is what makes pod simulation fast.
 */

#ifndef TSP_C2C_POD_HH
#define TSP_C2C_POD_HH

#include <memory>
#include <vector>

#include "sim/chip.hh"

namespace tsp {

struct PodSnapshot;

/** A ring of TSP chips on one clock domain. */
class Pod
{
  public:
    /** Ring link assignments on every chip. */
    static constexpr int kRightLink = 1; ///< To chip (i+1) % n.
    static constexpr int kLeftLink = 0;  ///< From chip (i-1+n) % n.

    /**
     * @param chips number of chips (>= 2).
     * @param wire_latency link flight time in cycles.
     * @param cfg applied to every chip; each chip's fault seed is
     *        derived from cfg.fault.seed and its ring index so
     *        members do not replay identical upset sequences.
     */
    Pod(int chips, Cycle wire_latency, ChipConfig cfg = {});

    /** @return chip @p i. */
    Chip &chip(int i);
    const Chip &chip(int i) const;

    /** @return the number of chips. */
    int size() const { return static_cast<int>(chips_.size()); }

    /** @return the ring wire latency. */
    Cycle wireLatency() const { return wireLatency_; }

    /** Advances every chip one cycle (lock-step). */
    void stepAll();

    /**
     * Lock-step run until every chip retires, or the shared clock
     * reaches @p max_cycles — an *absolute* cycle limit with the
     * same semantics as Chip::runBounded(cycle_limit), so resuming
     * an already-advanced pod bounds the total clock, not the number
     * of additional iterations. Calls fatal() on exhaustion.
     *
     * @return the final cycle count.
     */
    Cycle runAll(Cycle max_cycles = 10'000'000);

    /**
     * Runs every chip to retirement with conservative lookahead and
     * then equalizes all member clocks to the retirement cycle of
     * the last chip — exactly the state lock-step stepping leaves
     * behind, but reached via the event-driven fast-forward core.
     *
     * @param cycle_limit absolute clock bound (Chip::runBounded
     *        semantics).
     * @return true when every chip retired; false when the limit hit
     *         first or any member raised a machine check (distinguish
     *         with machineCheck()). On false the pod is mid-program
     *         and member clocks may differ by up to the lookahead;
     *         discard or rebuild before trusting further runs.
     */
    bool runAllBounded(Cycle cycle_limit = 10'000'000);

    /** @return true once every chip is done. */
    bool allDone() const;

    /** @return true when any member chip raised a machine check. */
    bool machineCheck() const;

    /**
     * @return index of the first machine-checked member, or -1 when
     * none (scan order; ties across members are not distinguished).
     */
    int machineCheckChip() const;

    /** @return the highest member clock (== every member's clock
     *  after a successful runAll/runAllBounded). */
    Cycle now() const;

    /**
     * Serializes every member chip (in ring order) into @p out,
     * including in-flight C2C link traffic. Take snapshots at
     * equalized clocks (after stepAll() or a successful bounded run)
     * so a restored pod resumes from a lock-step-consistent cut.
     * Refusal semantics per chip as Chip::snapshot().
     */
    bool snapshot(PodSnapshot &out, std::string *err = nullptr) const;

    /** Restores a PodSnapshot onto this pod (same size/topology). */
    bool restore(const PodSnapshot &snap, std::string *err = nullptr);

  private:
    std::vector<std::unique_ptr<Chip>> chips_;
    Cycle wireLatency_;
};

} // namespace tsp

#endif // TSP_C2C_POD_HH
