#include "c2c/collective.hh"

#include "common/logging.hh"

namespace tsp {

namespace {

/** Positions used by the schedule. */
constexpr SlicePos kVxm = Layout::vxm;

SlicePos
slicePos()
{
    return Layout::memPos(Hemisphere::East, AllReducePlan::kSlice);
}

/** Emits "read @p addr so it is at the east link at @p at". */
void
emitReadToLink(ScheduledProgram &prog, MemAddr addr, StreamRef s,
               Cycle at)
{
    const Cycle lead =
        opTiming(Opcode::Read).dFunc +
        Layout::transitDelay(slicePos(), Layout::c2cEast);
    Instruction rd;
    rd.op = Opcode::Read;
    rd.addr = addr;
    rd.dst = s;
    prog.emit(at - lead, IcuId::mem(Hemisphere::East,
                                    AllReducePlan::kSlice),
              rd);
}

} // namespace

AllReducePlan
buildRingAllReduce(const Pod &pod,
                   std::vector<ScheduledProgram> &programs,
                   int batch)
{
    const int n = const_cast<Pod &>(pod).size();
    TSP_ASSERT(n >= 2);
    TSP_ASSERT(batch >= 1 && batch <= AllReducePlan::kMaxBatch);
    programs.assign(static_cast<std::size_t>(n), {});

    AllReducePlan plan;
    const Cycle wire = pod.wireLatency();
    // One hop: serialize (22) + wire + receive (2) + to the VXM (47)
    // + add (1) + write transit + read back to the link, plus slack.
    plan.phase = kC2cSerializationCycles + wire + 160;
    plan.firstSend = 120;

    // Deskew every ring link once, well before the first send.
    for (int c = 0; c < n; ++c) {
        Instruction deskew;
        deskew.op = Opcode::Deskew;
        programs[static_cast<std::size_t>(c)].emit(
            0, IcuId::c2c(Pod::kRightLink), deskew);
        programs[static_cast<std::size_t>(c)].emit(
            1, IcuId::c2c(Pod::kLeftLink), deskew);
    }

    const IcuId mem =
        IcuId::mem(Hemisphere::East, AllReducePlan::kSlice);
    const StreamRef out_s{4, Direction::East};  // To the east link.
    const StreamRef in_s{6, Direction::East};   // From the west link.
    const StreamRef local_s{16, Direction::West}; // Slice -> VXM.
    const StreamRef sum_s{29, Direction::East};   // VXM -> slice.

    // The running partial lives at kResultAddr; chip 0 seeds it from
    // its local vector (identity add with the zero at kResultAddr is
    // avoided by just sending kLocalAddr directly in phase 0).
    //
    // Sample s's hops occupy slot s*(n+1) + p: pipelined batching
    // with the collision-free offset proved in the header comment.
    //
    // Reduce phases p = 0..n-2: chip p sends its partial (phase 0:
    // its local vector), chip p+1 receives, adds its local vector at
    // the VXM and commits to kResultAddr.
    for (int s = 0; s < batch; ++s) {
    const Cycle slot0 =
        static_cast<Cycle>(s) * static_cast<Cycle>(n + 1);
    const MemAddr local_a =
        AllReducePlan::kLocalAddr + static_cast<MemAddr>(s);
    const MemAddr result_a =
        AllReducePlan::kResultAddr + static_cast<MemAddr>(s);
    for (int p = 0; p <= n - 2; ++p) {
        const int sender = p;
        const int receiver = p + 1;
        auto &ps = programs[static_cast<std::size_t>(sender)];
        auto &pr = programs[static_cast<std::size_t>(receiver)];
        const Cycle send_at =
            plan.firstSend +
            (slot0 + static_cast<Cycle>(p)) * plan.phase;

        emitReadToLink(ps, p == 0 ? local_a : result_a, out_s,
                       send_at);
        Instruction send;
        send.op = Opcode::Send;
        send.imm0 = Pod::kRightLink;
        send.srcA = out_s;
        ps.emit(send_at, IcuId::c2c(Pod::kRightLink), send);

        const Cycle arrive =
            send_at + kC2cSerializationCycles + wire;
        Instruction recv;
        recv.op = Opcode::Receive;
        recv.imm0 = Pod::kLeftLink;
        recv.dst = in_s;
        pr.emit(arrive, IcuId::c2c(Pod::kLeftLink), recv);

        // The received vector is visible at the west link (pos 0)
        // at arrive + d_func(Receive), then flows east to the VXM.
        const Cycle at_vxm = arrive +
                             opTiming(Opcode::Receive).dFunc +
                             Layout::transitDelay(Layout::c2cWest,
                                                  kVxm);
        // Local vector arrives the same cycle, flowing west.
        Instruction rd;
        rd.op = Opcode::Read;
        rd.addr = local_a;
        rd.dst = local_s;
        pr.emit(at_vxm - opTiming(Opcode::Read).dFunc -
                    Layout::transitDelay(slicePos(), kVxm),
                mem, rd);

        Instruction add;
        add.op = Opcode::AddSat;
        add.dtype = DType::Int8;
        add.srcA = in_s;
        add.srcB = local_s;
        add.dst = sum_s;
        pr.emit(at_vxm, IcuId::vxmAlu(0), add);

        // Commit the new partial.
        const Cycle w_at = at_vxm + opTiming(Opcode::AddSat).dFunc +
                           Layout::transitDelay(kVxm, slicePos());
        Instruction wr;
        wr.op = Opcode::Write;
        wr.addr = result_a;
        wr.srcA = sum_s;
        pr.emit(w_at, mem, wr);
    }

    // Broadcast phases p = n-1 .. 2n-3: the total travels the ring;
    // each receiver stores it. Chip n-1 holds the total after the
    // reduce; it also copies it in place (already at kResultAddr).
    for (int p = n - 1; p <= 2 * n - 3; ++p) {
        const int sender = p % n;
        const int receiver = (p + 1) % n;
        auto &ps = programs[static_cast<std::size_t>(sender)];
        auto &pr = programs[static_cast<std::size_t>(receiver)];
        const Cycle send_at =
            plan.firstSend +
            (slot0 + static_cast<Cycle>(p)) * plan.phase;

        emitReadToLink(ps, result_a, out_s, send_at);
        Instruction send;
        send.op = Opcode::Send;
        send.imm0 = Pod::kRightLink;
        send.srcA = out_s;
        ps.emit(send_at, IcuId::c2c(Pod::kRightLink), send);

        const Cycle arrive =
            send_at + kC2cSerializationCycles + wire;
        Instruction recv;
        recv.op = Opcode::Receive;
        recv.imm0 = Pod::kLeftLink;
        recv.dst = in_s;
        pr.emit(arrive, IcuId::c2c(Pod::kLeftLink), recv);

        // Store straight to kResultAddr (pos 0 -> slice, eastward).
        const Cycle w_at = arrive +
                           opTiming(Opcode::Receive).dFunc +
                           Layout::transitDelay(Layout::c2cWest,
                                                slicePos());
        Instruction wr;
        wr.op = Opcode::Write;
        wr.addr = result_a;
        wr.srcA = in_s;
        pr.emit(w_at, mem, wr);
    }
    } // sample loop

    plan.finish =
        plan.firstSend +
        static_cast<Cycle>(2 * n - 2 +
                           (batch - 1) * (n + 1)) *
            plan.phase;
    return plan;
}

Cycle
runAllReduce(Pod &pod, std::vector<ScheduledProgram> &programs)
{
    TSP_ASSERT(static_cast<int>(programs.size()) == pod.size());
    for (int c = 0; c < pod.size(); ++c) {
        pod.chip(c).loadProgram(
            programs[static_cast<std::size_t>(c)].toAsm());
    }
    return pod.runAll();
}

} // namespace tsp
