/**
 * @file
 * Statically scheduled multi-chip collectives over a Pod ring.
 *
 * Because every chip and every link is deterministic, a collective is
 * just one more compile-time schedule: the ring all-reduce below
 * pipelines a partial sum around the ring (each hop lands at a
 * precomputed cycle, the VXM folds in the local contribution) and
 * then broadcasts the total — with zero synchronization instructions
 * after the initial deskew.
 */

#ifndef TSP_C2C_COLLECTIVE_HH
#define TSP_C2C_COLLECTIVE_HH

#include "c2c/pod.hh"
#include "compiler/schedule.hh"

namespace tsp {

/** Placement and timing constants of the ring all-reduce. */
struct AllReducePlan
{
    /** MEM slice (east hemisphere) holding the vectors. */
    static constexpr int kSlice = 43;
    /** Word holding the chip's local contribution. */
    static constexpr MemAddr kLocalAddr = 0x10;
    /** Word receiving the reduced result. */
    static constexpr MemAddr kResultAddr = 0x20;
    /** Batched schedules address kLocalAddr+s / kResultAddr+s. */
    static constexpr int kMaxBatch = 16;

    Cycle phase = 0;      ///< Cycles per ring hop.
    Cycle firstSend = 0;  ///< First Send's cycle.
    Cycle finish = 0;     ///< All chips hold the result by here.
};

/**
 * Builds per-chip programs for a saturating int8 ring all-reduce of
 * one 320-byte vector: result = satadd(...satadd(V0, V1)..., Vn-1),
 * landed at kResultAddr on every chip.
 *
 * With @p batch > 1 the schedule reduces @p batch independent vectors
 * in one program: sample s lives at kLocalAddr+s / kResultAddr+s and
 * its ring hops occupy send slots offset by s*(n+1) — the offset is
 * collision-free because each chip's link slots within one sample are
 * {c, c+n}, so a cross-sample clash would need ds*(n+1) in {0, n},
 * which has no solution for 1 <= ds < batch. Samples pipeline through
 * the ring (sample s+1 starts while s broadcasts), so cycles grow by
 * (n+1) phases per extra sample instead of a full (2n-2)-phase pass
 * plus program overhead: strictly sublinear in batch. toAsm() panics
 * on any same-cycle ICU double-booking, so a bad offset cannot build.
 *
 * @param pod the ring (provides size and wire latency).
 * @param programs out: one ScheduledProgram per chip.
 * @param batch vectors reduced per program (1..16; address-limited).
 * @return the plan with the computed timing.
 */
AllReducePlan buildRingAllReduce(
    const Pod &pod, std::vector<ScheduledProgram> &programs,
    int batch = 1);

/**
 * Loads the programs, runs the pod, and returns the cycle count.
 * Vectors must already be in place at kLocalAddr.
 */
Cycle runAllReduce(Pod &pod, std::vector<ScheduledProgram> &programs);

} // namespace tsp

#endif // TSP_C2C_COLLECTIVE_HH
