/**
 * @file
 * Statically scheduled multi-chip collectives over a Pod ring.
 *
 * Because every chip and every link is deterministic, a collective is
 * just one more compile-time schedule: the ring all-reduce below
 * pipelines a partial sum around the ring (each hop lands at a
 * precomputed cycle, the VXM folds in the local contribution) and
 * then broadcasts the total — with zero synchronization instructions
 * after the initial deskew.
 */

#ifndef TSP_C2C_COLLECTIVE_HH
#define TSP_C2C_COLLECTIVE_HH

#include "c2c/pod.hh"
#include "compiler/schedule.hh"

namespace tsp {

/** Placement and timing constants of the ring all-reduce. */
struct AllReducePlan
{
    /** MEM slice (east hemisphere) holding the vectors. */
    static constexpr int kSlice = 43;
    /** Word holding the chip's local contribution. */
    static constexpr MemAddr kLocalAddr = 0x10;
    /** Word receiving the reduced result. */
    static constexpr MemAddr kResultAddr = 0x20;

    Cycle phase = 0;      ///< Cycles per ring hop.
    Cycle firstSend = 0;  ///< First Send's cycle.
    Cycle finish = 0;     ///< All chips hold the result by here.
};

/**
 * Builds per-chip programs for a saturating int8 ring all-reduce of
 * one 320-byte vector: result = satadd(...satadd(V0, V1)..., Vn-1),
 * landed at kResultAddr on every chip.
 *
 * @param pod the ring (provides size and wire latency).
 * @param programs out: one ScheduledProgram per chip.
 * @return the plan with the computed timing.
 */
AllReducePlan buildRingAllReduce(
    const Pod &pod, std::vector<ScheduledProgram> &programs);

/**
 * Loads the programs, runs the pod, and returns the cycle count.
 * Vectors must already be in place at kLocalAddr.
 */
Cycle runAllReduce(Pod &pod, std::vector<ScheduledProgram> &programs);

} // namespace tsp

#endif // TSP_C2C_COLLECTIVE_HH
