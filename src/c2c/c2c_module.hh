/**
 * @file
 * Chip-to-chip communication (paper II, item 6): sixteen x4 links at
 * 30 Gb/s per lane — 3.84 Tb/s of off-chip pin bandwidth — exchanging
 * 320-byte vectors between pairs of chips with Send/Receive, after a
 * Deskew aligns each plesiochronous link.
 *
 * Links are point-to-point: connect() wires a local link to a peer
 * module's link with a fixed wire latency. Serialization occupies a
 * link for kC2cSerializationCycles per vector; overlapping Sends are a
 * scheduling bug and panic, preserving determinism.
 */

#ifndef TSP_C2C_C2C_MODULE_HH
#define TSP_C2C_C2C_MODULE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "arch/config.hh"
#include "stream/stream_io.hh"

namespace tsp {

/** Cycles to serialize one 320-byte vector onto a x4 30 Gb/s link. */
inline constexpr Cycle kC2cSerializationCycles = 22;

/** All sixteen C2C links of one chip. */
class C2cModule
{
  public:
    C2cModule(const ChipConfig &cfg, StreamFabric &fabric);

    /**
     * Wires local link @p link to @p peer_link on @p peer with
     * @p wire_latency cycles of flight time. Both directions are
     * established. Clocks are assumed aligned (same core clock), as
     * in a synchronously-deployed TSP pod.
     */
    void connect(int link, C2cModule &peer, int peer_link,
                 Cycle wire_latency);

    /** Executes Deskew/Send/Receive on @p link at cycle @p now. */
    void execute(const Instruction &inst, int link, Cycle now);

    /** Peer-side delivery (internal wiring; do not call directly). */
    void deliver(int link, const Vec320 &vec, Cycle arrival);

    /**
     * @return the earliest cycle > @p now at which this module's
     * state changes on its own: a pending rx vector's arrival or a
     * link's serializer going idle (txBusyUntil). kNoEventCycle when
     * nothing is in flight. Folded into Chip::nextEventCycle() so
     * the event-driven core never fast-forwards across a link event.
     */
    Cycle earliestEventCycle(Cycle now) const;

    /** @return vectors sent. */
    std::uint64_t sent() const { return sent_; }

    /** @return vectors received (consumed by Receive). */
    std::uint64_t received() const { return received_; }

    /**
     * @return non-strict Receives that found no arrived vector on
     * @p link — each one is a scheduling bug that silently skipped a
     * stream produce; see droppedReceives().
     */
    std::uint64_t droppedReceives(int link) const;

    /** @return dropped receives summed over all links. */
    std::uint64_t droppedReceives() const { return dropped_; }

    /** @return vectors waiting in link @p link's elastic buffer. */
    std::size_t pendingRx(int link) const;

    /** @return the stream access point (CSR counters). */
    const StreamIo &io() const { return io_; }

    /**
     * Serializes per-link flight state (deskew, serializer busy-until,
     * the elastic rx buffer with arrival cycles) and counters. Peer
     * wiring (peer/peerLink/wireLatency) is topology, re-established
     * by pod construction, not state.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restores link flight state onto the existing wiring. */
    void loadState(SnapshotReader &r);

  private:
    struct Link
    {
        C2cModule *peer = nullptr;
        int peerLink = -1;
        Cycle wireLatency = 0;
        bool deskewed = false;
        Cycle txBusyUntil = 0;
        std::deque<std::pair<Cycle, Vec320>> rx;
        std::uint64_t droppedReceives = 0;
    };

    Link &linkAt(int link);

    const ChipConfig &cfg_;
    StreamFabric &fabric_;
    StreamIo io_;
    std::vector<Link> links_;

    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace tsp

#endif // TSP_C2C_C2C_MODULE_HH
