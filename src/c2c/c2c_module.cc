#include "c2c/c2c_module.hh"

#include "common/logging.hh"

namespace tsp {

C2cModule::C2cModule(const ChipConfig &cfg, StreamFabric &fabric)
    : cfg_(cfg), io_(cfg, fabric, "C2C"), links_(kC2cLinks)
{
}

C2cModule::Link &
C2cModule::linkAt(int link)
{
    TSP_ASSERT(link >= 0 && link < kC2cLinks);
    return links_[static_cast<std::size_t>(link)];
}

void
C2cModule::connect(int link, C2cModule &peer, int peer_link,
                   Cycle wire_latency)
{
    Link &l = linkAt(link);
    Link &p = peer.linkAt(peer_link);
    TSP_ASSERT(!l.peer && !p.peer);
    l.peer = &peer;
    l.peerLink = peer_link;
    l.wireLatency = wire_latency;
    p.peer = this;
    p.peerLink = link;
    p.wireLatency = wire_latency;
}

void
C2cModule::deliver(int link, const Vec320 &vec, Cycle arrival)
{
    Link &l = linkAt(link);
    // Arrivals are inherently ordered on a point-to-point link.
    TSP_ASSERT(l.rx.empty() || l.rx.back().first <= arrival);
    l.rx.emplace_back(arrival, vec);
}

std::size_t
C2cModule::pendingRx(int link) const
{
    return links_[static_cast<std::size_t>(link)].rx.size();
}

void
C2cModule::execute(const Instruction &inst, int link, Cycle now)
{
    Link &l = linkAt(link);
    const SlicePos p = IcuId::c2c(link).pos();

    switch (inst.op) {
      case Opcode::Deskew:
        l.deskewed = true;
        return;

      case Opcode::Send: {
        if (!l.peer)
            panic("C2C%d: send on an unconnected link", link);
        if (!l.deskewed)
            panic("C2C%d: send before deskew", link);
        if (now < l.txBusyUntil) {
            panic("C2C%d: send while serializing previous vector "
                  "(busy until %llu, now %llu) — scheduler bug",
                  link, static_cast<unsigned long long>(l.txBusyUntil),
                  static_cast<unsigned long long>(now));
        }
        const Vec320 v = io_.consume(inst.srcA, p);
        l.txBusyUntil = now + kC2cSerializationCycles;
        l.peer->deliver(l.peerLink, v,
                        now + kC2cSerializationCycles + l.wireLatency);
        ++sent_;
        return;
      }

      case Opcode::Receive: {
        if (!l.deskewed)
            panic("C2C%d: receive before deskew", link);
        if (l.rx.empty() || l.rx.front().first > now) {
            if (cfg_.strictStreams) {
                panic("C2C%d: receive at cycle %llu with no arrived "
                      "vector (scheduler bug)",
                      link, static_cast<unsigned long long>(now));
            }
            return;
        }
        const Vec320 v = l.rx.front().second;
        l.rx.pop_front();
        io_.produce(inst.dst, p, v, now + opTiming(Opcode::Receive).dFunc);
        ++received_;
        return;
      }

      default:
        panic("C2C%d: bad opcode %s", link, opcodeName(inst.op));
    }
}

} // namespace tsp
