#include "c2c/pod.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/seed.hh"

namespace tsp {

Pod::Pod(int chips, Cycle wire_latency, ChipConfig cfg)
    : wireLatency_(wire_latency)
{
    TSP_ASSERT(chips >= 2);
    chips_.reserve(static_cast<std::size_t>(chips));
    const std::uint64_t base_seed = cfg.fault.seed;
    for (int i = 0; i < chips; ++i) {
        // Distinct upset sequences per member: identical seeds would
        // strike every chip at the same access index, which no real
        // pod exhibits.
        cfg.fault.seed = deriveSeed(base_seed, SeedDomain::PodChip,
                                    static_cast<std::uint64_t>(i));
        chips_.push_back(std::make_unique<Chip>(cfg));
    }
    for (int i = 0; i < chips; ++i) {
        Chip &a = *chips_[static_cast<std::size_t>(i)];
        Chip &b = *chips_[static_cast<std::size_t>((i + 1) % chips)];
        a.c2c().connect(kRightLink, b.c2c(), kLeftLink,
                        wire_latency);
    }
}

Chip &
Pod::chip(int i)
{
    TSP_ASSERT(i >= 0 && i < size());
    return *chips_[static_cast<std::size_t>(i)];
}

const Chip &
Pod::chip(int i) const
{
    TSP_ASSERT(i >= 0 && i < size());
    return *chips_[static_cast<std::size_t>(i)];
}

void
Pod::stepAll()
{
    for (auto &c : chips_)
        c->step();
}

bool
Pod::allDone() const
{
    for (const auto &c : chips_) {
        if (!c->done())
            return false;
    }
    return true;
}

bool
Pod::machineCheck() const
{
    return machineCheckChip() >= 0;
}

int
Pod::machineCheckChip() const
{
    for (int i = 0; i < size(); ++i) {
        if (chips_[static_cast<std::size_t>(i)]->machineCheck())
            return i;
    }
    return -1;
}

Cycle
Pod::now() const
{
    Cycle n = 0;
    for (const auto &c : chips_)
        n = std::max(n, c->now());
    return n;
}

Cycle
Pod::runAll(Cycle max_cycles)
{
    // Lock-step keeps every member clock equal, so one chip's clock
    // is the pod clock.
    while (!allDone()) {
        if (chips_.front()->now() >= max_cycles) {
            fatal("Pod::runAll: cycle limit %llu reached",
                  static_cast<unsigned long long>(max_cycles));
        }
        stepAll();
    }
    return chips_.front()->now();
}

bool
Pod::runAllBounded(Cycle cycle_limit)
{
    const int n = size();
    // A member may outrun an unretired ring neighbour by the minimum
    // flight time of any vector that neighbour could still send: a
    // Send issued at the neighbour's current cycle s lands no earlier
    // than s + serialization + wire. Running chip i only through
    // cycles < neighbour.now() + lookahead therefore guarantees every
    // arrival is in its rx queue before the receiving cycle executes.
    // Retired neighbours can never Send again, so they impose no
    // bound — treating them otherwise would freeze the pod once the
    // first member finished.
    const Cycle lookahead = kC2cSerializationCycles + wireLatency_;

    while (!allDone()) {
        bool progressed = false;
        for (int i = 0; i < n; ++i) {
            Chip &c = *chips_[static_cast<std::size_t>(i)];
            if (c.done())
                continue;
            Cycle horizon = cycle_limit;
            for (int d : {n - 1, 1}) {
                const Chip &peer =
                    *chips_[static_cast<std::size_t>((i + d) % n)];
                if (&peer == &c || peer.done())
                    continue;
                horizon = std::min(horizon, peer.now() + lookahead);
            }
            if (c.now() >= horizon)
                continue;
            const Cycle before = c.now();
            c.runBounded(horizon);
            if (c.machineCheck())
                return false;
            progressed = progressed || c.now() > before;
        }
        // The unretired member with the lowest clock always has
        // headroom under every neighbour's horizon, so a sweep with
        // no progress means every unretired member sits at
        // cycle_limit: the pod timed out.
        if (!progressed && !allDone())
            return false;
    }

    // Lock-step steps *every* member until the whole pod retires, so
    // early finishers idle-tick (and integrate power) up to the last
    // retirement cycle. Reproduce that tail for bit-identical stats.
    const Cycle end = now();
    for (auto &c : chips_) {
        c->runTo(end);
        if (c->machineCheck())
            return false;
    }
    return true;
}

} // namespace tsp
