#include "c2c/pod.hh"

#include "common/logging.hh"

namespace tsp {

Pod::Pod(int chips, Cycle wire_latency, ChipConfig cfg)
    : wireLatency_(wire_latency)
{
    TSP_ASSERT(chips >= 2);
    chips_.reserve(static_cast<std::size_t>(chips));
    for (int i = 0; i < chips; ++i)
        chips_.push_back(std::make_unique<Chip>(cfg));
    for (int i = 0; i < chips; ++i) {
        Chip &a = *chips_[static_cast<std::size_t>(i)];
        Chip &b = *chips_[static_cast<std::size_t>((i + 1) % chips)];
        a.c2c().connect(kRightLink, b.c2c(), kLeftLink,
                        wire_latency);
    }
}

Chip &
Pod::chip(int i)
{
    TSP_ASSERT(i >= 0 && i < size());
    return *chips_[static_cast<std::size_t>(i)];
}

void
Pod::stepAll()
{
    for (auto &c : chips_)
        c->step();
}

bool
Pod::allDone() const
{
    for (const auto &c : chips_) {
        if (!c->done())
            return false;
    }
    return true;
}

Cycle
Pod::runAll(Cycle max_cycles)
{
    Cycle guard = 0;
    while (!allDone()) {
        if (guard++ >= max_cycles) {
            fatal("Pod::runAll: cycle limit %llu reached",
                  static_cast<unsigned long long>(max_cycles));
        }
        stepAll();
    }
    return chips_.front()->now();
}

} // namespace tsp
