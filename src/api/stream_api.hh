/**
 * @file
 * A small user-facing builder mirroring the paper's groq.api listings
 * (Listing 1: streaming add; Listing 2: transpose16 with explicit
 * memory management). Tensors are [rows x 320] int8 arrays striped
 * over 16 MEM slices; each operation is compiled into exactly-timed
 * Read / VXM / SXM / Write instruction chains and executed on a chip
 * instance by run().
 *
 * This facade exists for quickstarts and ISA-level experiments; real
 * models use graph/Graph + compiler/Lowering.
 */

#ifndef TSP_API_STREAM_API_HH
#define TSP_API_STREAM_API_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "compiler/builder.hh"
#include "sim/chip.hh"

namespace tsp::api {

/** Opaque handle to a program tensor. */
struct TensorHandle
{
    int id = -1;
};

/** Result of Program::run(). */
struct RunInfo
{
    Cycle cycles = 0;           ///< Total program cycles.
    std::uint64_t instructions = 0; ///< Dispatched chip-wide.
};

/** A stream program under construction. */
class Program
{
  public:
    Program();
    ~Program();

    /** Allocates an int8 tensor of @p rows 320-byte vectors. */
    TensorHandle tensor(int rows);

    /** Allocates and fills with seeded uniform int8 data. */
    TensorHandle randomTensor(int rows, std::uint64_t seed);

    /** Sets tensor contents (row-major, rows x 320 bytes). */
    void setData(TensorHandle t,
                 const std::vector<std::int8_t> &data);

    /**
     * z = sat_int8(x + y), element-wise — the paper's Listing 1
     * producer-consumer chain: two MEM reads feed a VXM add whose
     * result streams back to memory with no GPR round trips.
     */
    TensorHandle add(TensorHandle x, TensorHandle y);

    /** z = max(0, x) via the VXM ReLU slice. */
    TensorHandle relu(TensorHandle x);

    /**
     * Transposes each aligned group of 16 rows as a 16x16 byte tile
     * per superlane through the SXM (Listing 2). Rows must be a
     * multiple of 16.
     */
    TensorHandle transpose16(TensorHandle x);

    /** Compiles, loads, and runs the program on a fresh chip. */
    RunInfo run();

    /** Reads a tensor back after run(). */
    std::vector<std::int8_t> read(TensorHandle t) const;

    /** @return the built chip (valid after run()). */
    Chip &chip();

    /** @return the number of instructions scheduled so far. */
    std::size_t scheduledInstructions() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace tsp::api

#endif // TSP_API_STREAM_API_HH
