#include "api/stream_api.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "compiler/mem_alloc.hh"

namespace tsp::api {

namespace {

/**
 * Tensors stripe over 16 slices so 16-stream ops have concurrency.
 * Two regions alternate by tensor id so binary ops usually read
 * their operands from disjoint slices; add() stages a copy when they
 * do not.
 */
constexpr int kStripe = 16;
constexpr int kRegionFirst[2] = {1, 17};

} // namespace

struct Program::Impl
{
    ScheduledProgram prog;
    KernelBuilder kb{prog};
    MemAllocator alloc;

    struct Tensor
    {
        MemAddr base = 0;
        int rows = 0;
        int region = 0;
        std::vector<std::int8_t> init; ///< Host data to DMA (may be
                                       ///< empty).

        GlobalAddr
        rowAddr(int r) const
        {
            return GlobalAddr{
                Hemisphere::West,
                kRegionFirst[region] + r % kStripe,
                static_cast<MemAddr>(base + r / kStripe)};
        }
    };
    std::vector<Tensor> tensors;

    /** Sequential op timeline: next free cycle. */
    Cycle next = ScheduledProgram::kProgramStart + 128;

    std::unique_ptr<Chip> chip;
    bool ran = false;

    Tensor &
    at(TensorHandle h)
    {
        TSP_ASSERT(h.id >= 0 &&
                   h.id < static_cast<int>(tensors.size()));
        return tensors[static_cast<std::size_t>(h.id)];
    }

    TensorHandle
    allocTensor(int rows)
    {
        TSP_ASSERT(rows > 0);
        Tensor t;
        t.rows = rows;
        t.region = static_cast<int>(tensors.size()) % 2;
        const int words = (rows + kStripe - 1) / kStripe;
        const GlobalAddr a = alloc.allocStriped(
            Hemisphere::West, kRegionFirst[t.region], kStripe,
            words);
        t.base = a.addr;
        tensors.push_back(std::move(t));
        return {static_cast<int>(tensors.size()) - 1};
    }

    /** Row-by-row MEM copy into a fresh tensor (region rotation). */
    TensorHandle
    stageCopy(TensorHandle src)
    {
        const int rows = at(src).rows;
        TensorHandle h = allocTensor(rows);
        // NOTE: allocTensor may reallocate `tensors`; re-fetch.
        Tensor &td = at(h);
        td.region = 1 - at(src).region; // Force the other region.
        const Tensor ts = at(src);      // Value copy: stable.
        // Slice-major order keeps each consecutive issue on a fresh
        // flow line of the single staging stream.
        Cycle t = next;
        for (int s_idx = 0; s_idx < kStripe; ++s_idx) {
            for (int r = s_idx; r < ts.rows; r += kStripe, ++t) {
                const GlobalAddr from = ts.rowAddr(r);
                const GlobalAddr to = td.rowAddr(r);
                const StreamRef s{
                    31,
                    Layout::flowDirection(from.pos(), to.pos())};
                kb.read(from, s, t);
                kb.write(to, s,
                         t + opTiming(Opcode::Read).dFunc +
                             Layout::transitDelay(from.pos(),
                                                  to.pos()));
            }
            t += Layout::numPositions;
        }
        next = t + 64;
        return h;
    }
};

Program::Program() : impl_(std::make_unique<Impl>()) {}
Program::~Program() = default;

TensorHandle
Program::tensor(int rows)
{
    return impl_->allocTensor(rows);
}

TensorHandle
Program::randomTensor(int rows, std::uint64_t seed)
{
    TensorHandle h = impl_->allocTensor(rows);
    Rng rng(seed);
    auto &t = impl_->at(h);
    t.init.resize(static_cast<std::size_t>(rows) * kLanes);
    for (auto &v : t.init)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return h;
}

void
Program::setData(TensorHandle h, const std::vector<std::int8_t> &data)
{
    auto &t = impl_->at(h);
    TSP_ASSERT(data.size() ==
               static_cast<std::size_t>(t.rows) * kLanes);
    t.init = data;
}

TensorHandle
Program::add(TensorHandle x, TensorHandle y)
{
    TSP_ASSERT(impl_->at(x).rows == impl_->at(y).rows);
    if (impl_->at(x).region == impl_->at(y).region)
        y = impl_->stageCopy(y); // Same slices: stage one operand.
    TensorHandle z = impl_->allocTensor(impl_->at(x).rows);
    // Value copies: allocTensor may have reallocated the pool.
    const auto tx = impl_->at(x);
    const auto ty = impl_->at(y);
    const auto tz = impl_->at(z);

    // Per row: Read X -> s16.e, Read Y -> s17.e (arriving together
    // at the VXM), AddSat -> s29.w, Write Z at arrival.
    Cycle t = impl_->next;
    const SlicePos vxm = Layout::vxm;
    for (int r = 0; r < tx.rows; ++r, ++t) {
        impl_->kb.readArriving(tx.rowAddr(r),
                               {16, Direction::East}, vxm, t);
        impl_->kb.readArriving(ty.rowAddr(r),
                               {17, Direction::East}, vxm, t);
        impl_->kb.vxmBinary(0, Opcode::AddSat, DType::Int8,
                            {16, Direction::East},
                            {17, Direction::East},
                            {29, Direction::West}, t);
        const GlobalAddr dst = tz.rowAddr(r);
        impl_->kb.write(dst, {29, Direction::West},
                        t + 1 +
                            Layout::transitDelay(vxm, dst.pos()));
    }
    impl_->next = t + 64; // Generous inter-op gap.
    return z;
}

TensorHandle
Program::relu(TensorHandle x)
{
    TensorHandle z = impl_->allocTensor(impl_->at(x).rows);
    const auto tx = impl_->at(x);
    const auto tz = impl_->at(z);

    Cycle t = impl_->next;
    const SlicePos vxm = Layout::vxm;
    for (int r = 0; r < tx.rows; ++r, ++t) {
        impl_->kb.readArriving(tx.rowAddr(r),
                               {16, Direction::East}, vxm, t);
        impl_->kb.vxmUnary(1, Opcode::Relu, DType::Int8,
                           {16, Direction::East},
                           {29, Direction::West}, t);
        const GlobalAddr dst = tz.rowAddr(r);
        impl_->kb.write(dst, {29, Direction::West},
                        t + 1 +
                            Layout::transitDelay(vxm, dst.pos()));
    }
    impl_->next = t + 64;
    return z;
}

TensorHandle
Program::transpose16(TensorHandle x)
{
    TSP_ASSERT(impl_->at(x).rows % 16 == 0);
    TensorHandle z = impl_->allocTensor(impl_->at(x).rows);
    const auto tx = impl_->at(x);
    const auto tz = impl_->at(z);

    // Each 16-row group: 16 reads (one per stripe slice) arriving
    // together at the west SXM on s0-15.w; the transposer emits 16
    // streams on s16-31.e which write back, rows/columns exchanged
    // within each superlane (Listing 2's 16-slice in / 16-slice out).
    const SlicePos sxm = Layout::sxmPos(Hemisphere::West);
    Cycle t = impl_->next;
    for (int g = 0; g < tx.rows / 16; ++g, t += 4) {
        for (int j = 0; j < 16; ++j) {
            impl_->kb.readArriving(
                tx.rowAddr(16 * g + j),
                {static_cast<StreamId>(j), Direction::West}, sxm, t);
        }
        Instruction inst;
        inst.op = Opcode::Transpose;
        inst.srcA = {0, Direction::West};
        inst.dst = {16, Direction::East};
        inst.groupSize = 16;
        impl_->kb.sxm(Hemisphere::West, SxmUnit::Transpose0, inst, t);
        const Cycle vis = t + opTiming(Opcode::Transpose).dFunc;
        for (int j = 0; j < 16; ++j) {
            const GlobalAddr dst = tz.rowAddr(16 * g + j);
            impl_->kb.write(
                dst, {static_cast<StreamId>(16 + j), Direction::East},
                vis + Layout::transitDelay(sxm, dst.pos()));
        }
    }
    impl_->next = t + 64;
    return z;
}

RunInfo
Program::run()
{
    TSP_ASSERT(!impl_->ran);
    impl_->chip = std::make_unique<Chip>();
    Chip &chip = *impl_->chip;

    // DMA initial tensor data.
    for (const auto &t : impl_->tensors) {
        if (t.init.empty())
            continue;
        for (int r = 0; r < t.rows; ++r) {
            Vec320 v;
            for (int b = 0; b < kLanes; ++b) {
                v.bytes[static_cast<std::size_t>(b)] =
                    static_cast<std::uint8_t>(
                        t.init[static_cast<std::size_t>(r) * kLanes +
                               b]);
            }
            const GlobalAddr a = t.rowAddr(r);
            chip.mem(a.hem, a.slice).backdoorWrite(a.addr, v);
        }
    }

    chip.loadProgram(impl_->prog.toAsm(/*with_preamble=*/true));
    RunInfo info;
    info.cycles = chip.run();
    info.instructions = chip.totalDispatched();
    impl_->ran = true;
    return info;
}

std::vector<std::int8_t>
Program::read(TensorHandle h) const
{
    TSP_ASSERT(impl_->ran);
    const auto &t =
        const_cast<Program *>(this)->impl_->at(h);
    std::vector<std::int8_t> out(
        static_cast<std::size_t>(t.rows) * kLanes);
    for (int r = 0; r < t.rows; ++r) {
        const GlobalAddr a = t.rowAddr(r);
        const Vec320 v =
            impl_->chip->mem(a.hem, a.slice).backdoorRead(a.addr);
        for (int b = 0; b < kLanes; ++b) {
            out[static_cast<std::size_t>(r) * kLanes + b] =
                static_cast<std::int8_t>(
                    v.bytes[static_cast<std::size_t>(b)]);
        }
    }
    return out;
}

Chip &
Program::chip()
{
    TSP_ASSERT(impl_->chip);
    return *impl_->chip;
}

std::size_t
Program::scheduledInstructions() const
{
    return impl_->prog.size();
}

} // namespace tsp::api
