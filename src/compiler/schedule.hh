/**
 * @file
 * The compiler's central artifact: a set of (ICU, cycle, instruction)
 * events with exact dispatch times.
 *
 * The TSP has no hardware scheduling — program order in each of the
 * 144 queues plus explicit NOP padding *is* the schedule (paper III).
 * Kernels append timed events; toAsm() lowers them to per-queue
 * programs by sorting each queue and inserting NOPs for the gaps, and
 * verifies that no queue is double-booked in a cycle.
 */

#ifndef TSP_COMPILER_SCHEDULE_HH
#define TSP_COMPILER_SCHEDULE_HH

#include <string>
#include <vector>

#include "isa/assembler.hh"

namespace tsp {

/** One scheduled dispatch. */
struct ScheduledInst
{
    Cycle cycle = 0;
    IcuId icu{};
    Instruction inst{};
};

/** A fully timed program under construction. */
class ScheduledProgram
{
  public:
    /** Appends an event; events may arrive in any order. */
    void
    emit(Cycle cycle, IcuId icu, Instruction inst)
    {
        events_.push_back({cycle, icu, std::move(inst)});
    }

    /** @return all events (unsorted). */
    const std::vector<ScheduledInst> &events() const { return events_; }

    /** @return number of events. */
    std::size_t size() const { return events_.size(); }

    /** @return the latest dispatch cycle (0 if empty). */
    Cycle lastCycle() const;

    /**
     * Lowers to per-queue instruction lists with NOP padding.
     *
     * With @p with_preamble, every queue begins with the compulsory
     * barrier (paper III.A.2): queue 0 issues Notify at cycle 0 and
     * every other queue parks on Sync, retiring at kBarrierLatency;
     * all events must then be scheduled at or after kProgramStart.
     *
     * With @p compress_repeats (default), runs of four or more
     * identical instructions at a uniform cadence collapse into
     * [inst, Repeat(n-1, d)] — the paper's Repeat instruction, which
     * shrinks program text (and therefore Ifetch bandwidth) without
     * changing a single dispatch cycle.
     *
     * Panics if a queue is over-booked in a cycle (more than one
     * event, or two for a MEM read/write dual-issue pair).
     */
    AsmProgram toAsm(bool with_preamble = false,
                     bool compress_repeats = true) const;

    /** @return total instructions across all queues of @p prog. */
    static std::size_t instructionCount(const AsmProgram &prog);

    /**
     * First cycle available to events in a preamble'd program: the
     * barrier releases at kBarrierLatency (35), so dispatch resumes
     * at 35 and the first even boundary is 36.
     */
    static constexpr Cycle kProgramStart = 36;

    /**
     * Renders an occupancy chart (the Fig. 11 style schedule dump):
     * one row per involved ICU, one column per cycle in
     * [@p from, @p to), '#' where an instruction dispatches.
     */
    std::string gantt(Cycle from, Cycle to) const;

    /**
     * Renders the schedule as an event table sorted by time:
     * "cycle  ICU  instruction" lines.
     */
    std::string listing() const;

  private:
    std::vector<ScheduledInst> events_;
};

} // namespace tsp

#endif // TSP_COMPILER_SCHEDULE_HH
