/**
 * @file
 * Compiler-side memory management over the PGAS (paper IV.A).
 *
 * There is no hardware allocator or cache hierarchy: the compiler owns
 * every word of the 88 slices and places tensors to satisfy the
 * concurrency it needs — operand rows near the consuming MXM, bank
 * interleaving for simultaneous read/write, and striping across slices
 * for multi-stream bursts. This class is a bump allocator per
 * (slice, bank) with helpers for those placement patterns.
 */

#ifndef TSP_COMPILER_MEM_ALLOC_HH
#define TSP_COMPILER_MEM_ALLOC_HH

#include <array>
#include <vector>

#include "mem/addr.hh"

namespace tsp {

/** Bump allocator across all 88 MEM slices. */
class MemAllocator
{
  public:
    MemAllocator();

    /**
     * Allocates @p words consecutive word addresses in one slice.
     *
     * @param bank 0/1 to force a bank, -1 to use the fuller-free one.
     * @return the first word's address. Calls fatal() on exhaustion.
     */
    GlobalAddr alloc(Hemisphere hem, int slice, int words,
                     int bank = -1);

    /**
     * Allocates @p words at the same offset in each of @p count
     * consecutive slices starting at @p first_slice (striped layouts
     * for multi-stream bursts such as weight tiles).
     *
     * @return the address in the first slice; slice i's copy is at
     * the same addr with slice = first_slice + i.
     */
    GlobalAddr allocStriped(Hemisphere hem, int first_slice, int count,
                            int words, int bank = -1);

    /** @return free words remaining in (hem, slice, bank). */
    int freeWords(Hemisphere hem, int slice, int bank) const;

    /**
     * @return the slice in @p hem within [lo, hi] with the most free
     * space in either bank, or -1 if nothing fits @p words.
     */
    int bestSlice(Hemisphere hem, int lo, int hi, int words) const;

    /**
     * The reserved all-zero vector of @p hem, used to stream padding
     * (zero-fill) into convolution halos. Word 0 of slice 0 in each
     * hemisphere is never handed out.
     */
    GlobalAddr zeroAddr(Hemisphere hem) const;

  private:
    struct BankState
    {
        int next = 0; ///< Next free offset within the bank.
    };

    static constexpr int kBankWords = kMemWordsPerSlice / kMemBanks;

    BankState &state(Hemisphere hem, int slice, int bank);
    const BankState &state(Hemisphere hem, int slice, int bank) const;

    /** [hem][slice][bank]. */
    std::array<std::array<std::array<BankState, kMemBanks>,
                          kMemSlicesPerHem>,
               2>
        banks_{};
};

} // namespace tsp

#endif // TSP_COMPILER_MEM_ALLOC_HH
