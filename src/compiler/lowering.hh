/**
 * @file
 * Layer lowering: turns quantized NN layers into exactly-timed TSP
 * instruction schedules.
 *
 * Responsibilities mirroring the paper's compiler back-end (II, IV):
 *  - placement: weights striped near the MXMs, constants in dedicated
 *    quad slices, activations split across hemispheres with halo rows
 *    (see compiler/tensor.hh);
 *  - two-dimensional scheduling of instructions and data (Eq. 4),
 *    tracking every stream's position and time of use;
 *  - explicit management of MEM ports: a reservation table guarantees
 *    each slice sees at most one read and one write per cycle, in
 *    opposite banks — there is no hardware arbiter to fall back on;
 *  - chaining: MXM results stream through the VXM requantization
 *    chain (int32 +bias -> fp32 -> x scale -> int8 -> ReLU) without
 *    round-tripping through MEM (paper IV.B);
 *  - optional cross-layer pipelining: a consumer may read an input
 *    row as soon as its producer committed it (paper IV.C).
 *
 * Stream map (fixed roles; see DESIGN.md section 7):
 *   West engine (planes 0,1 at MXM_W):
 *     westward: s0-15 weights, s16/s17 activations (planes 0/1),
 *               s30 halo copies from the east engine's outputs;
 *     eastward: s0-3 bias, s4-7 scale, s8-15 + s24-27 chain
 *               intermediates, s16-19/s20-23 MXM results (planes
 *               0/1), s28 int8, s29 final (to east-hemisphere
 *               slices), s30 halo copies toward east storage.
 *   East engine (planes 2,3 at MXM_E): the exact mirror.
 * Cross-hemisphere reuse of the same stream ids is safe because every
 * consumer samples a value at or before the position where the other
 * hemisphere's producers overwrite the flow line.
 */

#ifndef TSP_COMPILER_LOWERING_HH
#define TSP_COMPILER_LOWERING_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/config.hh"
#include "compiler/builder.hh"
#include "compiler/host_image.hh"

namespace tsp {

/** Host-side quantized convolution layer parameters. */
struct ConvWeights
{
    int outC = 0;
    int inC = 0;
    int kh = 1;
    int kw = 1;
    std::vector<std::int8_t> w;    ///< [outC][inC][kh][kw].
    std::vector<std::int32_t> bias;  ///< [outC].
    std::vector<float> scale;        ///< [outC]: (acc+bias)*scale.

    /** @return weight element. */
    std::int8_t
    at(int oc, int ic, int ky, int kx) const
    {
        return w[((static_cast<std::size_t>(oc) * inC + ic) * kh + ky) *
                     kw +
                 kx];
    }
};

/** Convolution geometry. */
struct ConvGeom
{
    int kh = 1;
    int kw = 1;
    int stride = 1;
    int pad = 0;
    bool relu = true;
};

/** An activation tensor plus its per-row commit times. */
struct LoweredTensor
{
    ActTensor t;
    /** ready[e][local_row]: first cycle a read of that row may issue. */
    std::shared_ptr<std::vector<Cycle>> ready[2];

    /** @return latest commit across both parts. */
    Cycle maxReady() const;
};

/** The lowering context: one instance builds one program. */
class Lowering
{
  public:
    /** Slice-region boundaries (per hemisphere). */
    static constexpr int kPadSlice = 0;     ///< Constant pad vectors.
    static constexpr int kActFirst = 1;     ///< Activations 1..19.
    static constexpr int kActLast = 19;
    static constexpr int kBiasFirst = 20;   ///< Bias quads 20..23.
    static constexpr int kScaleFirst = 24;  ///< Scale quads 24..27.
    static constexpr int kWeightFirst = 28; ///< Weight stripes 28..43.

    /** Default striping width for activation tensors. */
    static constexpr int kActStripe = 4;

    /** Number of rotating activation slice groups. */
    static constexpr int kActGroups = 4;

    /**
     * @param pipelined allow consuming a row as soon as it commits
     * (paper IV.C optimization); when false, every layer waits for
     * the previous layer's last write.
     */
    explicit Lowering(bool pipelined = true);

    ~Lowering();

    /** @return the schedule under construction. */
    ScheduledProgram &program() { return prog_; }

    /** @return the DMA manifest. */
    HostImage &image() { return image_; }

    /** @return the memory allocator. */
    MemAllocator &allocator() { return alloc_; }

    /**
     * Places a host-provided int8 input tensor [h x w x channels] and
     * queues its rows for DMA. Ready at cycle 0.
     */
    LoweredTensor inputTensor(int height, int width, int channels,
                              const std::vector<std::int8_t> &data,
                              int halo = kDefaultHalo);

    /** Lowers a quantized conv2d (+bias, x scale, optional ReLU). */
    LoweredTensor conv2d(const LoweredTensor &in, const ConvGeom &g,
                         const ConvWeights &w,
                         int out_halo = kDefaultHalo);

    /** Lowers k x k max pooling (stride @p stride, pad @p pad). */
    LoweredTensor maxPool(const LoweredTensor &in, int k, int stride,
                          int pad, int out_halo = kDefaultHalo);

    /**
     * Lowers global average pooling to a 1 x 1 tensor; @p scale maps
     * the int32 sum back to int8 (1 / positions folded with the
     * layer's requant ratio).
     */
    LoweredTensor globalAvgPool(const LoweredTensor &in, float scale);

    /**
     * Lowers out = relu?(sat_int8(a * sa + b * sb)) — the quantized
     * residual connection.
     */
    LoweredTensor residualAdd(const LoweredTensor &a,
                              const LoweredTensor &b, float sa,
                              float sb, bool relu,
                              int out_halo = kDefaultHalo);

    /** @return cycle at which the whole program has finished. */
    Cycle finishCycle() const { return lastEvent_; }

    /**
     * @return conv layers whose weights were actually placed (SRAM
     * tiles allocated + DMA entries emitted). Repeat lowerings of the
     * same ConvWeights object reuse the first placement, so a batch-B
     * program pays the weight install once: this counter stays at the
     * model's layer count while conv2d() is called B times per layer.
     */
    std::uint64_t weightPlacements() const { return weightPlacements_; }

    /** One lowered layer's cycle span (for the per-layer power plot). */
    struct LayerSpan
    {
        std::string name;
        Cycle begin = 0;
        Cycle end = 0;
    };

    /** @return spans of every lowered layer in emission order. */
    const std::vector<LayerSpan> &layers() const { return layers_; }

    /** Names the next lowered layer (defaults to the op kind). */
    void setNextLayerName(std::string name)
    {
        nextName_ = std::move(name);
    }

    /** Default halo rows stored on each side of the split. */
    static constexpr int kDefaultHalo = 4;

    /** @return the slice group (0..3) of a tensor, or -1. */
    static int groupOf(const LoweredTensor &t);

    /**
     * Emits a MEM-to-MEM copy of @p src into a fresh allocation that
     * avoids @p avoid_mask's groups (explicit memory management in
     * the spirit of Listing 2). One row per cycle per engine.
     */
    LoweredTensor copyTensor(const LoweredTensor &src, int avoid_mask);

  private:
    struct Engine; // Per-hemisphere scheduling state.

    Engine &engine(int e);

    /** Gate for VXM ops that time-share the bisection streams. */
    Cycle globalChainGate();

    /** Marks both engines' chains busy until @p c. */
    void setGlobalChain(Cycle c);

    /**
     * Allocates an output tensor in the act region, rotating across
     * the slice groups while skipping any group in @p avoid_mask
     * (bit g set = group g busy — typically the op's input tensors,
     * so reads and writes of one engine never fight over a slice).
     */
    LoweredTensor allocOutput(int height, int width, int channels,
                              int halo, Hemisphere part_hem[2],
                              int avoid_mask = 0);

    /** Places conv weights+consts into SRAM for both hemispheres. */
    struct PlacedConv;
    std::unique_ptr<PlacedConv> placeConv(const ConvGeom &g,
                                          const ConvWeights &w);

    /**
     * Returns the placement for (@p g, @p w), placing on first use and
     * reusing the cached placement on repeats. Keyed by the weights
     * object's address, validated against a content hash + geometry so
     * a recycled address or mutated weights re-place instead of
     * aliasing stale SRAM tiles. Reuse is sound because convEngine
     * only ever *reads* the placed tiles/quads.
     */
    const PlacedConv &placedConvFor(const ConvGeom &g,
                                    const ConvWeights &w);

    // --- MEM port reservation (no arbiters: compile-time proof) ---
    bool tryReserveRead(const GlobalAddr &a, Cycle c);
    bool tryReserveWrite(const GlobalAddr &a, Cycle c);
    void unreserveRead(const GlobalAddr &a, Cycle c);
    void unreserveWrite(const GlobalAddr &a, Cycle c);

    /** One element of an all-or-nothing reservation batch. */
    struct Access
    {
        GlobalAddr a;
        Cycle c = 0;
        bool write = false;
    };

    /** Reserves all of @p batch or none; @return success. */
    bool tryReserveAll(const std::vector<Access> &batch);

    /** Emits a read with port reservation; panics if impossible. */
    void reservedRead(const GlobalAddr &a, StreamRef s,
                      SlicePos consumer, Cycle at);

    /** Emits a write with port reservation (must have been probed). */
    void reservedWrite(const GlobalAddr &a, StreamRef s, Cycle issue);

    void bumpLast(Cycle c);

    // Engine subroutines (definitions in lowering.cc).
    void convEngine(int e, const LoweredTensor &in, const ConvGeom &g,
                    const PlacedConv &pc, LoweredTensor &out);
    void maxPoolEngine(int e, const LoweredTensor &in, int k,
                       int stride, int pad, LoweredTensor &out);
    void eltwiseAddEngine(int e, const LoweredTensor &a,
                          const LoweredTensor &b, const ConstQuad &sa,
                          const ConstQuad &sb, bool relu,
                          LoweredTensor &out);

    /**
     * Runs the requant chain for a drain of @p n result vectors
     * arriving at the VXM from @p result_base starting at @p tv, and
     * writes the int8 outputs to the addresses produced by @p dest
     * (primary + optional halo copy). Returns per-vector write cycles
     * via @p commit.
     */
    struct DrainDest
    {
        GlobalAddr primary;
        bool hasHalo = false;
        GlobalAddr haloCopy;
    };
    void requantChain(int e, StreamId result_base,
                      const ConstQuad &bias, const ConstQuad &scale,
                      bool relu, Cycle tv, int n,
                      const std::vector<DrainDest> &dest,
                      std::vector<Cycle> &commit);

    void recordLayer(const char *kind, Cycle begin);

    /** Rotating activation stripe group (0..2) for allocOutput. */
    int actGroup_ = 0;

    ScheduledProgram prog_;
    KernelBuilder kb_;
    MemAllocator alloc_;
    HostImage image_;
    bool pipelined_;
    Cycle lastEvent_ = 0;
    std::vector<LayerSpan> layers_;
    std::string nextName_;

    std::unique_ptr<Engine> eng_[2];

    /** (hem, slice, cycle) -> port usage bits. */
    std::unordered_map<std::uint64_t, std::uint8_t> ports_;

    /** Cached conv placement + the key fields that validate reuse. */
    struct ConvCacheEntry;
    std::unordered_map<const ConvWeights *,
                       std::unique_ptr<ConvCacheEntry>>
        convCache_;
    std::uint64_t weightPlacements_ = 0;
};

} // namespace tsp

#endif // TSP_COMPILER_LOWERING_HH
