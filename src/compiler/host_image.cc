#include "compiler/host_image.hh"

#include <cstring>

#include "common/logging.hh"
#include "sim/chip.hh"

namespace tsp {

void
HostImage::add(const GlobalAddr &addr,
               const std::array<std::uint8_t, kLanes> &bytes)
{
    entries_.push_back({addr, bytes});
}

void
HostImage::addInt8(const GlobalAddr &addr, const std::int8_t *values,
                   int count)
{
    TSP_ASSERT(count >= 0 && count <= kLanes);
    Entry e;
    e.addr = addr;
    e.bytes.fill(0);
    for (int i = 0; i < count; ++i)
        e.bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(values[i]);
    entries_.push_back(std::move(e));
}

void
HostImage::addInt32Quad(const GlobalAddr quad[4],
                        const std::int32_t *values, int count)
{
    TSP_ASSERT(count >= 0 && count <= kLanes);
    for (int k = 0; k < 4; ++k) {
        Entry e;
        e.addr = quad[k];
        e.bytes.fill(0);
        for (int i = 0; i < count; ++i) {
            const auto u = static_cast<std::uint32_t>(values[i]);
            e.bytes[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>((u >> (8 * k)) & 0xff);
        }
        entries_.push_back(std::move(e));
    }
}

void
HostImage::addFp32Quad(const GlobalAddr quad[4], const float *values,
                       int count)
{
    TSP_ASSERT(count >= 0 && count <= kLanes);
    for (int k = 0; k < 4; ++k) {
        Entry e;
        e.addr = quad[k];
        e.bytes.fill(0);
        for (int i = 0; i < count; ++i) {
            std::uint32_t u;
            std::memcpy(&u, &values[i], sizeof(u));
            e.bytes[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>((u >> (8 * k)) & 0xff);
        }
        entries_.push_back(std::move(e));
    }
}

void
HostImage::applyTo(Chip &chip) const
{
    for (const Entry &e : entries_) {
        Vec320 v;
        v.bytes = e.bytes;
        chip.mem(e.addr.hem, e.addr.slice).backdoorWrite(e.addr.addr, v);
    }
}

} // namespace tsp
