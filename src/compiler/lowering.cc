#include "compiler/lowering.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compiler/lowering_internal.hh"

namespace tsp {

namespace {

/** Cycles from a Read's issue to visibility at @p consumer. */
Cycle
readLead(const GlobalAddr &a, SlicePos consumer)
{
    return opTiming(Opcode::Read).dFunc +
           Layout::transitDelay(a.pos(), consumer);
}

/** MXM drain parameters shared by compiler and chip model. */
constexpr Cycle kAccLatency = kSuperlanes + 1; // opTiming(Acc).dFunc
constexpr Cycle kMxmToVxm = 46;                // delta(MXM, VXM)

} // namespace

struct Lowering::ConvCacheEntry
{
    std::uint64_t hash = 0;
    ConvGeom g;
    int outC = 0;
    int inC = 0;
    std::unique_ptr<PlacedConv> pc;
};

Cycle
LoweredTensor::maxReady() const
{
    Cycle m = 0;
    for (int e = 0; e < 2; ++e) {
        if (!ready[e])
            continue;
        for (const Cycle c : *ready[e])
            m = std::max(m, c);
    }
    return m;
}

Lowering::Lowering(bool pipelined) : kb_(prog_), pipelined_(pipelined)
{
    for (int e = 0; e < 2; ++e) {
        eng_[e] = std::make_unique<Engine>();
        Engine &en = *eng_[e];
        en.idx = e;
        en.hem = e == 0 ? Hemisphere::West : Hemisphere::East;
        en.planes[0] = e == 0 ? 0 : 2;
        en.planes[1] = e == 0 ? 1 : 3;
        en.mxmPos = Layout::mxmPos(en.hem);
        en.aluBase = e == 0 ? 0 : 8;
        en.roles.toMxm =
            e == 0 ? Direction::West : Direction::East;
        en.roles.fromMxm = opposite(en.roles.toMxm);

        // Schedules must leave room for read leads plus the barrier.
        const Cycle base = ScheduledProgram::kProgramStart + 128;
        en.installFree = base;
        en.chainFree = base;
        en.planeFree[0] = base;
        en.planeFree[1] = base;

        // Padding vectors: zero pads read all-zero SRAM (no DMA
        // needed); -128 pads are DMA-filled for max pooling.
        en.padZero[0] = alloc_.alloc(en.hem, kPadSlice, 1);
        en.padZero[1] = alloc_.alloc(en.hem, kActLast, 1);
        en.padNeg128[0] = alloc_.alloc(en.hem, kPadSlice, 1);
        en.padNeg128[1] = alloc_.alloc(en.hem, kActLast, 1);
        en.padNeg128[2] = alloc_.alloc(en.hem, kBiasFirst, 1);
        std::array<std::int8_t, kLanes> neg;
        neg.fill(-128);
        for (const auto &a : en.padNeg128)
            image_.addInt8(a, neg.data(), kLanes);
        en.zeroQuad = allocConstQuad(alloc_, en.hem, kScaleFirst);
        // Zero quad: SRAM zero-initialized; nothing to DMA.
    }
}

Lowering::~Lowering() = default;

Lowering::Engine &
Lowering::engine(int e)
{
    TSP_ASSERT(e == 0 || e == 1);
    return *eng_[e];
}

void
Lowering::bumpLast(Cycle c)
{
    lastEvent_ = std::max(lastEvent_, c);
}

void
Lowering::recordLayer(const char *kind, Cycle begin)
{
    LayerSpan span;
    span.name = nextName_.empty() ? kind : nextName_;
    nextName_.clear();
    span.begin = begin;
    span.end = lastEvent_;
    layers_.push_back(std::move(span));
}

// --------------------------------------------------------------------
// MEM port reservation
// --------------------------------------------------------------------

namespace {

std::uint64_t
portKey(const GlobalAddr &a, Cycle c)
{
    const std::uint64_t slice =
        static_cast<std::uint64_t>(a.hem == Hemisphere::East
                                       ? kMemSlicesPerHem + a.slice
                                       : a.slice);
    return (c << 7) | slice;
}

constexpr std::uint8_t kPortRead = 0x1;
constexpr std::uint8_t kPortWrite = 0x2;
constexpr std::uint8_t kPortReadBank = 0x4;  // Bank of the read.
constexpr std::uint8_t kPortWriteBank = 0x8; // Bank of the write.

} // namespace

bool
Lowering::tryReserveRead(const GlobalAddr &a, Cycle c)
{
    const std::uint64_t key = portKey(a, c);
    auto it = ports_.find(key);
    const int bank = a.bank();
    if (it == ports_.end()) {
        ports_[key] = static_cast<std::uint8_t>(
            kPortRead | (bank ? kPortReadBank : 0));
        return true;
    }
    std::uint8_t &bits = it->second;
    if (bits & kPortRead)
        return false; // One read per cycle.
    if (bits & kPortWrite) {
        const int wbank = (bits & kPortWriteBank) ? 1 : 0;
        if (wbank == bank)
            return false; // Pseudo-dual-port: opposite banks only.
    }
    bits |= static_cast<std::uint8_t>(kPortRead |
                                      (bank ? kPortReadBank : 0));
    return true;
}

void
Lowering::unreserveRead(const GlobalAddr &a, Cycle c)
{
    auto it = ports_.find(portKey(a, c));
    TSP_ASSERT(it != ports_.end() && (it->second & kPortRead));
    it->second &= static_cast<std::uint8_t>(
        ~(kPortRead | kPortReadBank));
    if (it->second == 0)
        ports_.erase(it);
}

bool
Lowering::tryReserveWrite(const GlobalAddr &a, Cycle c)
{
    const std::uint64_t key = portKey(a, c);
    auto it = ports_.find(key);
    const int bank = a.bank();
    if (it == ports_.end()) {
        ports_[key] = static_cast<std::uint8_t>(
            kPortWrite | (bank ? kPortWriteBank : 0));
        return true;
    }
    std::uint8_t &bits = it->second;
    if (bits & kPortWrite)
        return false;
    if (bits & kPortRead) {
        const int rbank = (bits & kPortReadBank) ? 1 : 0;
        if (rbank == bank)
            return false;
    }
    bits |= static_cast<std::uint8_t>(kPortWrite |
                                      (bank ? kPortWriteBank : 0));
    return true;
}

void
Lowering::unreserveWrite(const GlobalAddr &a, Cycle c)
{
    auto it = ports_.find(portKey(a, c));
    TSP_ASSERT(it != ports_.end() && (it->second & kPortWrite));
    it->second &= static_cast<std::uint8_t>(
        ~(kPortWrite | kPortWriteBank));
    if (it->second == 0)
        ports_.erase(it);
}

bool
Lowering::tryReserveAll(const std::vector<Access> &batch)
{
    std::size_t done = 0;
    for (; done < batch.size(); ++done) {
        const Access &acc = batch[done];
        const bool ok = acc.write ? tryReserveWrite(acc.a, acc.c)
                                  : tryReserveRead(acc.a, acc.c);
        if (!ok)
            break;
    }
    if (done == batch.size())
        return true;
    for (std::size_t i = 0; i < done; ++i) {
        const Access &acc = batch[i];
        if (acc.write)
            unreserveWrite(acc.a, acc.c);
        else
            unreserveRead(acc.a, acc.c);
    }
    return false;
}

void
Lowering::reservedRead(const GlobalAddr &a, StreamRef s,
                       SlicePos consumer, Cycle at)
{
    kb_.readArriving(a, s, consumer, at);
    bumpLast(at);
}

void
Lowering::reservedWrite(const GlobalAddr &a, StreamRef s, Cycle issue)
{
    kb_.write(a, s, issue);
    bumpLast(issue + 1);
}

// --------------------------------------------------------------------
// Tensor placement
// --------------------------------------------------------------------

namespace {
/** Activation stripe groups: {1..4}, {5..8}, {9..12}, {13..16}. */
constexpr int kActGroupStride = 4;
} // namespace

int
Lowering::groupOf(const LoweredTensor &t)
{
    const int first = t.t.part[0].firstSlice;
    if (first < kActFirst)
        return -1;
    return (first - kActFirst) / kActGroupStride;
}

LoweredTensor
Lowering::allocOutput(int height, int width, int channels, int halo,
                      Hemisphere part_hem[2], int avoid_mask)
{
    TSP_ASSERT(height >= 1 && width >= 1 && channels >= 1);
    LoweredTensor lt;
    ActTensor &t = lt.t;
    t.height = height;
    t.width = width;
    t.channels = channels;
    t.kgCount = (channels + kMxmDim - 1) / kMxmDim;
    t.splitY = height > 1 ? (height + 1) / 2 : 1;
    t.halo = height > 1 ? std::min(halo, height) : 0;

    int group = actGroup_;
    for (int tries = 0; tries < kActGroups; ++tries) {
        if (!(avoid_mask & (1 << group)))
            break;
        group = (group + 1) % kActGroups;
    }
    actGroup_ = (group + 1) % kActGroups;
    const int first = kActFirst + group * kActGroupStride;

    for (int e = 0; e < 2; ++e) {
        const int stored_rows =
            e == 0 ? t.storedHiY() : t.height - t.storedLoY();
        const int rows = stored_rows * t.width * t.kgCount;
        StripedTensor &st = t.part[e];
        st.hem = part_hem[e];
        st.firstSlice = first;
        st.nSlices = kActStripe;
        st.rows = rows;
        if (rows > 0) {
            const GlobalAddr a =
                alloc_.allocStriped(st.hem, first, kActStripe,
                                    st.wordsPerSlice());
            st.base = a.addr;
        }
        lt.ready[e] = std::make_shared<std::vector<Cycle>>(
            static_cast<std::size_t>(std::max(rows, 0)), Cycle{0});
    }
    return lt;
}

LoweredTensor
Lowering::inputTensor(int height, int width, int channels,
                      const std::vector<std::int8_t> &data, int halo)
{
    TSP_ASSERT(static_cast<std::size_t>(height) * width * channels ==
               data.size());
    // Every tensor part lives in its engine's own hemisphere: reads
    // flow toward the engine's MXM (or the VXM) without crossing the
    // bisection, and outputs are flipped back by the chains' final
    // stage.
    Hemisphere hems[2] = {Hemisphere::West, Hemisphere::East};
    LoweredTensor lt =
        allocOutput(height, width, channels, halo, hems);
    const ActTensor &t = lt.t;

    // DMA every stored row of both parts.
    std::vector<std::int8_t> row(kLanes, 0);
    for (int e = 0; e < 2; ++e) {
        const int y_lo = e == 0 ? 0 : t.storedLoY();
        const int y_hi = e == 0 ? t.storedHiY() : t.height;
        for (int y = y_lo; y < y_hi; ++y) {
            for (int x = 0; x < t.width; ++x) {
                for (int kg = 0; kg < t.kgCount; ++kg) {
                    std::fill(row.begin(), row.end(), 0);
                    const int c_lo = kg * kMxmDim;
                    const int c_hi =
                        std::min(channels, c_lo + kMxmDim);
                    for (int c = c_lo; c < c_hi; ++c) {
                        row[static_cast<std::size_t>(c - c_lo)] =
                            data[(static_cast<std::size_t>(y) * t.width +
                                  x) *
                                     channels +
                                 c];
                    }
                    image_.addInt8(t.addrOf(e, y, x, kg), row.data(),
                                   kLanes);
                }
            }
        }
    }
    return lt;
}

namespace {

/** FNV-1a over the layer's full parameter content. */
std::uint64_t
convContentHash(const ConvGeom &g, const ConvWeights &w)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const void *p, std::size_t n) {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ULL;
        }
    };
    const int dims[6] = {w.outC, w.inC, g.kh,
                         g.kw,   g.stride, g.pad};
    mix(dims, sizeof(dims));
    const unsigned char relu = g.relu ? 1 : 0;
    mix(&relu, 1);
    mix(w.w.data(), w.w.size() * sizeof(w.w[0]));
    mix(w.bias.data(), w.bias.size() * sizeof(w.bias[0]));
    mix(w.scale.data(), w.scale.size() * sizeof(w.scale[0]));
    return h;
}

} // namespace

const Lowering::PlacedConv &
Lowering::placedConvFor(const ConvGeom &g, const ConvWeights &w)
{
    auto it = convCache_.find(&w);
    if (it != convCache_.end()) {
        const ConvCacheEntry &e = *it->second;
        const bool same_geom =
            e.g.kh == g.kh && e.g.kw == g.kw &&
            e.g.stride == g.stride && e.g.pad == g.pad &&
            e.g.relu == g.relu && e.outC == w.outC &&
            e.inC == w.inC;
        if (same_geom && e.hash == convContentHash(g, w))
            return *e.pc;
        convCache_.erase(it); // Recycled address or mutated weights.
    }
    auto entry = std::make_unique<ConvCacheEntry>();
    entry->hash = convContentHash(g, w);
    entry->g = g;
    entry->outC = w.outC;
    entry->inC = w.inC;
    entry->pc = placeConv(g, w);
    ++weightPlacements_;
    const PlacedConv &pc = *entry->pc;
    convCache_.emplace(&w, std::move(entry));
    return pc;
}

std::unique_ptr<Lowering::PlacedConv>
Lowering::placeConv(const ConvGeom &g, const ConvWeights &w)
{
    auto pc = std::make_unique<PlacedConv>();
    pc->g = g;
    pc->outC = w.outC;
    pc->inC = w.inC;
    pc->kgIn = (w.inC + kMxmDim - 1) / kMxmDim;
    pc->cogOut = (w.outC + kMxmDim - 1) / kMxmDim;
    const int windows = pc->windows();

    std::vector<std::int8_t> row(kMxmDim, 0);
    std::vector<std::int32_t> biasv(kMxmDim, 0);
    std::vector<float> scalev(kMxmDim, 0.0f);

    for (int e = 0; e < 2; ++e) {
        const Hemisphere hem =
            e == 0 ? Hemisphere::West : Hemisphere::East;
        pc->tiles[e].reserve(
            static_cast<std::size_t>(pc->cogOut) * windows);
        for (int cog = 0; cog < pc->cogOut; ++cog) {
            for (int ky = 0; ky < g.kh; ++ky) {
                for (int kx = 0; kx < g.kw; ++kx) {
                    for (int kg = 0; kg < pc->kgIn; ++kg) {
                        const int valid_rows = std::min(
                            kMxmDim, w.outC - cog * kMxmDim);
                        WeightTile tile = allocWeightTile(
                            alloc_, hem, kWeightFirst, valid_rows);
                        // DMA the stored row groups (tail rows of
                        // the last group zero).
                        const int stored =
                            tile.bursts() * WeightTile::kStripe;
                        for (int r = 0; r < stored; ++r) {
                            std::fill(row.begin(), row.end(), 0);
                            const int oc = cog * kMxmDim + r;
                            if (oc < w.outC) {
                                const int c_lo = kg * kMxmDim;
                                const int c_hi = std::min(
                                    w.inC, c_lo + kMxmDim);
                                for (int ic = c_lo; ic < c_hi; ++ic) {
                                    row[static_cast<std::size_t>(
                                        ic - c_lo)] =
                                        w.at(oc, ic, ky, kx);
                                }
                            }
                            image_.addInt8(tile.rowAddr(r),
                                           row.data(), kMxmDim);
                        }
                        pc->tiles[e].push_back(tile);
                    }
                }
            }
            // Per-cog bias / scale quads.
            std::fill(biasv.begin(), biasv.end(), 0);
            std::fill(scalev.begin(), scalev.end(), 0.0f);
            for (int r = 0; r < kMxmDim; ++r) {
                const int oc = cog * kMxmDim + r;
                if (oc < w.outC) {
                    biasv[static_cast<std::size_t>(r)] = w.bias[oc];
                    scalev[static_cast<std::size_t>(r)] = w.scale[oc];
                }
            }
            ConstQuad bq = allocConstQuad(alloc_, hem, kBiasFirst);
            ConstQuad sq = allocConstQuad(alloc_, hem, kScaleFirst);
            image_.addInt32Quad(bq.addr, biasv.data(), kMxmDim);
            image_.addFp32Quad(sq.addr, scalev.data(), kMxmDim);
            pc->bias[e].push_back(bq);
            pc->scale[e].push_back(sq);
        }
    }
    return pc;
}

// --------------------------------------------------------------------
// Requantization chain (shared by conv and global-avg-pool drains)
// --------------------------------------------------------------------

void
Lowering::requantChain(int e, StreamId result_base,
                       const ConstQuad &bias, const ConstQuad &scale,
                       bool relu, Cycle tv, int n,
                       const std::vector<DrainDest> &dest,
                       std::vector<Cycle> &commit)
{
    Engine &en = engine(e);
    const StreamRoles &r = en.roles;
    const SlicePos vxm = Layout::vxm;
    commit.assign(static_cast<std::size_t>(n), 0);

    for (int i = 0; i < n; ++i) {
        const Cycle t = tv + static_cast<Cycle>(i);

        // Stage 1: acc + bias (int32, saturating).
        for (int k = 0; k < 4; ++k)
            reservedRead(bias.addr[k], r.bias(k), vxm, t);
        StreamRef res{static_cast<StreamId>(result_base), r.fromMxm};
        kb_.vxmBinary(en.aluBase + 0, Opcode::AddSat, DType::Int32,
                      res, r.bias(0), r.stage1(0), t);
        // Stage 2: int32 -> fp32.
        kb_.vxmConvert(en.aluBase + 1, DType::Int32, DType::Fp32,
                       r.stage1(0), r.stage2(0), t + 1);
        // Stage 3: x scale (fp32).
        for (int k = 0; k < 4; ++k)
            reservedRead(scale.addr[k], r.scale(k), vxm, t + 3);
        kb_.vxmBinary(en.aluBase + 2, Opcode::Mul, DType::Fp32,
                      r.stage2(0), r.scale(0), r.stage3(0), t + 3);
        // Stage 4: fp32 -> int8 (round-to-nearest-even, saturating).
        kb_.vxmConvert(en.aluBase + 3, DType::Fp32, DType::Int8,
                       r.stage3(0), r.stageInt8(), t + 5);
        // Stage 5 flips direction toward the engine's own hemisphere
        // (ReLU when the layer has one, an identity Max otherwise).
        if (relu) {
            kb_.vxmUnary(en.aluBase + 4, Opcode::Relu, DType::Int8,
                         r.stageInt8(), r.finalOwn(), t + 7);
        } else {
            kb_.vxmBinary(en.aluBase + 4, Opcode::Max, DType::Int8,
                          r.stageInt8(), r.stageInt8(), r.finalOwn(),
                          t + 7);
        }
        const Cycle vis_final = t + 8;

        // Primary write at arrival (ports reserved by the caller's
        // drain placement).
        const DrainDest &d = dest[static_cast<std::size_t>(i)];
        const Cycle w_issue =
            vis_final +
            Layout::transitDelay(vxm, d.primary.pos());
        reservedWrite(d.primary, r.finalOwn(), w_issue);
        commit[static_cast<std::size_t>(i)] = w_issue + 1;

        // Halo duplicate flows the other way.
        if (d.hasHalo) {
            kb_.vxmBinary(en.aluBase + 5, Opcode::Max, DType::Int8,
                          r.finalOwn(), r.finalOwn(), r.haloOut(),
                          vis_final);
            const Cycle h_issue =
                vis_final + 1 +
                Layout::transitDelay(vxm, d.haloCopy.pos());
            reservedWrite(d.haloCopy, r.haloOut(), h_issue);
        }
    }
}

// --------------------------------------------------------------------
// Convolution engine
// --------------------------------------------------------------------

void
Lowering::convEngine(int e, const LoweredTensor &in, const ConvGeom &g,
                     const PlacedConv &pc, LoweredTensor &out)
{
    Engine &en = engine(e);
    const StreamRoles &r = en.roles;
    const ActTensor &it = in.t;
    ActTensor &ot = out.t;

    const int y_lo = e == 0 ? 0 : ot.splitY;
    const int y_hi = e == 0 ? ot.splitY : ot.height;
    const int owned = (y_hi - y_lo) * ot.width;
    if (owned <= 0)
        return;

    const int windows = pc.windows();
    const int chunk_max = static_cast<int>(kMxmAccDepth);
    const Cycle in_max_ready = pipelined_ ? 0 : in.maxReady();

    // Flattened owned output positions, chunked.
    int chunk_idx = 0;
    for (int cog = 0; cog < pc.cogOut; ++cog) {
        for (int p0 = 0; p0 < owned; p0 += chunk_max, ++chunk_idx) {
            const int n = std::min(chunk_max, owned - p0);
            const int pi = chunk_idx % 2;
            const int plane = en.planes[pi];

            Cycle prev_window_end = en.planeFree[pi];
            Cycle last_window_start = 0;
            for (int w = 0; w < windows; ++w) {
                const int kg = w % pc.kgIn;
                const int kx = (w / pc.kgIn) % g.kw;
                const int ky = w / (pc.kgIn * g.kw);
                const WeightTile &tile =
                    pc.tiles[e][static_cast<std::size_t>(cog) *
                                    windows +
                                w];

                // Weight install: the LW burst may overlap the
                // plane's previous window, but IW must not commit
                // while the array is still streaming it.
                const Cycle bursts =
                    static_cast<Cycle>(tile.bursts());
                const Cycle iw_min =
                    w == 0 ? en.windowEnd[pi] : prev_window_end;
                const Cycle inst_start = std::max(
                    en.installFree,
                    iw_min > bursts ? iw_min - bursts : 0);
                const Cycle inst_done = kb_.installWeights(
                    plane, tile, /*streams_base=*/0, r.toMxm,
                    inst_start);
                en.installFree = inst_start + bursts + 1;
                bumpLast(inst_done);

                // Per-element source addresses.
                std::vector<GlobalAddr> src(
                    static_cast<std::size_t>(n));
                std::vector<Cycle> row_ready(
                    static_cast<std::size_t>(n), 0);
                for (int i = 0; i < n; ++i) {
                    const int p = p0 + i;
                    const int oy = y_lo + p / ot.width;
                    const int ox = p % ot.width;
                    const int iy = oy * g.stride - g.pad + ky;
                    const int ix = ox * g.stride - g.pad + kx;
                    if (iy < 0 || iy >= it.height || ix < 0 ||
                        ix >= it.width) {
                        src[static_cast<std::size_t>(i)] =
                            en.padZero[pi];
                        continue;
                    }
                    if (!it.stores(e, iy)) {
                        panic("convEngine: engine %d needs input row "
                              "y=%d beyond its halo",
                              e, iy);
                    }
                    src[static_cast<std::size_t>(i)] =
                        it.addrOf(e, iy, ix, kg);
                    if (in.ready[e]) {
                        row_ready[static_cast<std::size_t>(i)] =
                            (*in.ready[e])[static_cast<std::size_t>(
                                it.localRow(e, iy, ix, kg))];
                    }
                }

                // Earliest window start.
                Cycle tw = std::max(prev_window_end, inst_done);
                for (int i = 0; i < n; ++i) {
                    const Cycle lead = readLead(
                        src[static_cast<std::size_t>(i)], en.mxmPos);
                    // Sequential mode pretends every row commits at
                    // the producer's last write (paper IV.C "before").
                    const Cycle rdy =
                        pipelined_
                            ? row_ready[static_cast<std::size_t>(i)]
                            : in_max_ready;
                    // Read issue = tw + i - lead >= rdy.
                    const Cycle need = rdy + lead;
                    if (tw + static_cast<Cycle>(i) < need)
                        tw = need - static_cast<Cycle>(i);
                }

                // Probe read ports; bump the window until all fit.
                for (int attempt = 0;; ++attempt) {
                    if (attempt > 100000) {
                        panic("convEngine: cannot place window "
                              "(port livelock)");
                    }
                    int ok = 0;
                    for (int i = 0; i < n; ++i) {
                        const GlobalAddr &a =
                            src[static_cast<std::size_t>(i)];
                        const Cycle issue =
                            tw + static_cast<Cycle>(i) -
                            readLead(a, en.mxmPos);
                        if (!tryReserveRead(a, issue))
                            break;
                        ++ok;
                    }
                    if (ok == n)
                        break;
                    // Roll back and retry one cycle later.
                    for (int i = 0; i < ok; ++i) {
                        const GlobalAddr &a =
                            src[static_cast<std::size_t>(i)];
                        unreserveRead(a,
                                      tw + static_cast<Cycle>(i) -
                                          readLead(a, en.mxmPos));
                    }
                    ++tw;
                }

                // Emit the reads and the window.
                for (int i = 0; i < n; ++i) {
                    reservedRead(src[static_cast<std::size_t>(i)],
                                 r.act(pi), en.mxmPos,
                                 tw + static_cast<Cycle>(i));
                }
                kb_.abc(plane, r.act(pi),
                        static_cast<std::uint32_t>(n),
                        /*accumulate=*/w > 0, DType::Int8, tw);
                bumpLast(tw + static_cast<Cycle>(n));

                prev_window_end = tw + static_cast<Cycle>(n);
                last_window_start = tw;
            }

            // ---- Drain through the requant chain.
            // chainFree/chainTail are in VXM-arrival time; ACC issue
            // u leads them by the accumulate-exit + transit latency.
            constexpr Cycle drain_lead = kAccLatency + kMxmToVxm;
            const int sig = g.relu ? 1 : 0;
            // A heterogeneous predecessor may have had traffic
            // crossing the result streams' transit span; leave the
            // full MXM-to-VXM flight clear after its tail.
            const Cycle gate = en.chainSig == sig
                                   ? en.chainFree
                                   : en.chainTail + kMxmToVxm;
            Cycle u = last_window_start + 1;
            if (gate > drain_lead)
                u = std::max(u, gate - drain_lead);

            // Destination rows (+ halo duplicates).
            std::vector<DrainDest> dest(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i) {
                const int p = p0 + i;
                const int oy = y_lo + p / ot.width;
                const int ox = p % ot.width;
                DrainDest &d = dest[static_cast<std::size_t>(i)];
                d.primary = ot.addrOf(e, oy, ox, cog);
                if (ot.stores(1 - e, oy)) {
                    d.hasHalo = true;
                    d.haloCopy = ot.addrOf(1 - e, oy, ox, cog);
                }
            }

            // Probe the drain's whole port footprint (const-quad
            // reads + output writes); shift the drain on conflict.
            constexpr Cycle chain_out_lat = 8;
            for (int attempt = 0;; ++attempt) {
                if (attempt > 100000)
                    panic("convEngine: cannot place drain");
                std::vector<Access> batch;
                const Cycle tv = u + kAccLatency + kMxmToVxm;
                for (int i = 0; i < n; ++i) {
                    const Cycle t = tv + static_cast<Cycle>(i);
                    for (int q = 0; q < 4; ++q) {
                        const GlobalAddr &ba =
                            pc.bias[e][static_cast<std::size_t>(cog)]
                                .addr[q];
                        batch.push_back(
                            {ba, t - readLead(ba, Layout::vxm),
                             false});
                        const GlobalAddr &sa =
                            pc.scale[e][static_cast<std::size_t>(cog)]
                                .addr[q];
                        batch.push_back(
                            {sa, t + 3 - readLead(sa, Layout::vxm),
                             false});
                    }
                    const DrainDest &d =
                        dest[static_cast<std::size_t>(i)];
                    const Cycle vis = t + chain_out_lat;
                    batch.push_back(
                        {d.primary,
                         vis + Layout::transitDelay(Layout::vxm,
                                                    d.primary.pos()),
                         true});
                    if (d.hasHalo) {
                        batch.push_back(
                            {d.haloCopy,
                             vis + 1 +
                                 Layout::transitDelay(
                                     Layout::vxm, d.haloCopy.pos()),
                             true});
                    }
                }
                if (tryReserveAll(batch))
                    break;
                ++u;
            }

            const Cycle tv = u + kAccLatency + kMxmToVxm;
            kb_.acc(plane, r.result(pi, 0),
                    static_cast<std::uint32_t>(n), u);

            std::vector<Cycle> commit;
            requantChain(e, r.result(pi, 0).id, pc.bias[e][cog],
                         pc.scale[e][cog], g.relu, tv, n, dest,
                         commit);

            // Record row readiness (halo copies commit one visibility
            // cycle later plus their own transit).
            for (int i = 0; i < n; ++i) {
                const int p = p0 + i;
                const int oy = y_lo + p / ot.width;
                const int ox = p % ot.width;
                (*out.ready[e])[static_cast<std::size_t>(
                    ot.localRow(e, oy, ox, cog))] =
                    commit[static_cast<std::size_t>(i)];
                const DrainDest &d = dest[static_cast<std::size_t>(i)];
                if (d.hasHalo) {
                    const Cycle vis = tv + static_cast<Cycle>(i) +
                                      chain_out_lat;
                    const Cycle hi =
                        vis + 1 +
                        Layout::transitDelay(Layout::vxm,
                                             d.haloCopy.pos());
                    (*out.ready[1 - e])[static_cast<std::size_t>(
                        ot.localRow(1 - e, oy, ox, cog))] = hi + 1;
                }
            }

            en.chainFree = tv + static_cast<Cycle>(n);
            en.chainTail =
                tv + static_cast<Cycle>(n) + chain_out_lat + 2;
            en.chainSig = sig;
            en.planeFree[pi] = u + 1;
            en.windowEnd[pi] =
                last_window_start + static_cast<Cycle>(n);
        }
    }
}

LoweredTensor
Lowering::conv2d(const LoweredTensor &in, const ConvGeom &g,
                 const ConvWeights &w, int out_halo)
{
    TSP_ASSERT(in.t.channels == w.inC);
    const int out_h =
        (in.t.height + 2 * g.pad - g.kh) / g.stride + 1;
    const int out_w =
        (in.t.width + 2 * g.pad - g.kw) / g.stride + 1;
    TSP_ASSERT(out_h >= 1 && out_w >= 1);

    const PlacedConv &pc = placedConvFor(g, w);

    Hemisphere hems[2] = {Hemisphere::West, Hemisphere::East};
    int avoid = 0;
    if (const int ig = groupOf(in); ig >= 0)
        avoid |= 1 << ig;
    LoweredTensor out =
        allocOutput(out_h, out_w, w.outC, out_halo, hems, avoid);

    const Cycle begin = lastEvent_;
    for (int e = 0; e < 2; ++e)
        convEngine(e, in, g, pc, out);
    recordLayer("conv2d", begin);
    return out;
}

} // namespace tsp
