#include "compiler/builder.hh"

#include "common/logging.hh"

namespace tsp {

void
KernelBuilder::read(const GlobalAddr &a, StreamRef s, Cycle issue)
{
    Instruction inst;
    inst.op = Opcode::Read;
    inst.addr = a.addr;
    inst.dst = s;
    prog_.emit(issue, a.icu(), inst);
}

Cycle
KernelBuilder::readArriving(const GlobalAddr &a, StreamRef s,
                            SlicePos consumer_pos, Cycle at)
{
    const Cycle lead = opTiming(Opcode::Read).dFunc +
                       Layout::transitDelay(a.pos(), consumer_pos);
    if (at < lead) {
        panic("readArriving: arrival %llu needs issue %llu cycles "
              "earlier than 0",
              static_cast<unsigned long long>(at),
              static_cast<unsigned long long>(lead));
    }
    // The stream must flow toward the consumer.
    TSP_ASSERT(consumer_pos == a.pos() ||
               Layout::flowDirection(a.pos(), consumer_pos) == s.dir);
    const Cycle issue = at - lead;
    read(a, s, issue);
    return issue;
}

void
KernelBuilder::write(const GlobalAddr &a, StreamRef s, Cycle issue)
{
    Instruction inst;
    inst.op = Opcode::Write;
    inst.addr = a.addr;
    inst.srcA = s;
    prog_.emit(issue, a.icu(), inst);
}

Cycle
KernelBuilder::vxmBinary(int alu, Opcode op, DType t, StreamRef a,
                         StreamRef b, StreamRef dst, Cycle issue)
{
    TSP_ASSERT(isVxmBinary(op));
    Instruction inst;
    inst.op = op;
    inst.dtype = t;
    inst.srcA = a;
    inst.srcB = b;
    inst.dst = dst;
    prog_.emit(issue, IcuId::vxmAlu(alu), inst);
    return issue + opTiming(op).dFunc;
}

Cycle
KernelBuilder::vxmUnary(int alu, Opcode op, DType t, StreamRef a,
                        StreamRef dst, Cycle issue, std::uint32_t imm)
{
    TSP_ASSERT(isVxmUnary(op) && op != Opcode::Convert);
    Instruction inst;
    inst.op = op;
    inst.dtype = t;
    inst.srcA = a;
    inst.dst = dst;
    inst.imm0 = imm;
    prog_.emit(issue, IcuId::vxmAlu(alu), inst);
    return issue + opTiming(op).dFunc;
}

Cycle
KernelBuilder::vxmConvert(int alu, DType from, DType to, StreamRef a,
                          StreamRef dst, Cycle issue)
{
    Instruction inst;
    inst.op = Opcode::Convert;
    inst.imm1 = static_cast<std::uint32_t>(from);
    inst.imm0 = static_cast<std::uint32_t>(to);
    inst.srcA = a;
    inst.dst = dst;
    prog_.emit(issue, IcuId::vxmAlu(alu), inst);
    return issue + opTiming(Opcode::Convert).dFunc;
}

Cycle
KernelBuilder::installWeights(int plane, const WeightTile &tile,
                              StreamId streams_base, Direction dir,
                              Cycle start)
{
    const SlicePos mxm_pos =
        Layout::mxmPos(plane < 2 ? Hemisphere::West : Hemisphere::East);
    const IcuId wq = IcuId::mxm(plane, /*weight_sequencer=*/true);
    constexpr int stripe = WeightTile::kStripe;
    const int bursts = tile.bursts(); // Partial tiles install less.

    // One LW per cycle; burst k consumes rows 16k..16k+15 on streams
    // base..base+15 at cycle start + k.
    for (int k = 0; k < bursts; ++k) {
        const Cycle lw_cycle = start + static_cast<Cycle>(k);
        for (int j = 0; j < stripe; ++j) {
            const int row = k * stripe + j;
            StreamRef s{static_cast<StreamId>(streams_base + j), dir};
            readArriving(tile.rowAddr(row), s, mxm_pos, lw_cycle);
        }
        Instruction lw;
        lw.op = Opcode::Lw;
        lw.srcA = StreamRef{streams_base, dir};
        lw.groupSize = stripe;
        lw.dtype = DType::Int8;
        prog_.emit(lw_cycle, wq, lw);
    }

    // Commit the buffer into the array the cycle after the last LW.
    Instruction iw;
    iw.op = Opcode::Iw;
    iw.imm0 = static_cast<std::uint32_t>(plane);
    const Cycle iw_cycle = start + static_cast<Cycle>(bursts);
    prog_.emit(iw_cycle, wq, iw);
    return iw_cycle + 1;
    // (Callers advance their install resource by bursts() + 1.)
}

void
KernelBuilder::abc(int plane, StreamRef act, std::uint32_t count,
                   bool accumulate, DType atype, Cycle issue)
{
    Instruction inst;
    inst.op = Opcode::Abc;
    inst.imm0 = static_cast<std::uint32_t>(plane);
    inst.imm1 = count;
    inst.srcA = act;
    inst.dtype = atype;
    if (accumulate)
        inst.flags |= Instruction::kFlagAccumulate;
    prog_.emit(issue, IcuId::mxm(plane, /*weight_sequencer=*/false),
               inst);
}

void
KernelBuilder::acc(int plane, StreamRef dst, std::uint32_t count,
                   Cycle issue)
{
    Instruction inst;
    inst.op = Opcode::Acc;
    inst.imm0 = static_cast<std::uint32_t>(plane);
    inst.imm1 = count;
    inst.dst = dst;
    prog_.emit(issue, IcuId::mxm(plane, /*weight_sequencer=*/false),
               inst);
}

Cycle
KernelBuilder::sxm(Hemisphere hem, SxmUnit unit, Instruction inst,
                   Cycle issue)
{
    const Cycle done = issue + opTiming(inst.op).dFunc;
    prog_.emit(issue, IcuId::sxm(hem, static_cast<int>(unit)),
               std::move(inst));
    return done;
}

void
KernelBuilder::preamble()
{
    // The barrier is synthesized by ScheduledProgram::toAsm(true);
    // nothing to emit here. Kept as an explicit no-op so kernels can
    // assert intent.
}

} // namespace tsp
