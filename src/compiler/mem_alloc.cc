#include "compiler/mem_alloc.hh"

#include "common/logging.hh"

namespace tsp {

MemAllocator::MemAllocator()
{
    // Reserve word 0 of slice 0, bank 0 in each hemisphere as the
    // architectural zero vector (zero padding source).
    for (int h = 0; h < 2; ++h)
        banks_[static_cast<std::size_t>(h)][0][0].next = 1;
}

MemAllocator::BankState &
MemAllocator::state(Hemisphere hem, int slice, int bank)
{
    TSP_ASSERT(slice >= 0 && slice < kMemSlicesPerHem);
    TSP_ASSERT(bank >= 0 && bank < kMemBanks);
    return banks_[static_cast<std::size_t>(hem)]
                 [static_cast<std::size_t>(slice)]
                 [static_cast<std::size_t>(bank)];
}

const MemAllocator::BankState &
MemAllocator::state(Hemisphere hem, int slice, int bank) const
{
    return const_cast<MemAllocator *>(this)->state(hem, slice, bank);
}

int
MemAllocator::freeWords(Hemisphere hem, int slice, int bank) const
{
    return kBankWords - state(hem, slice, bank).next;
}

GlobalAddr
MemAllocator::alloc(Hemisphere hem, int slice, int words, int bank)
{
    TSP_ASSERT(words > 0);
    if (bank < 0) {
        bank = freeWords(hem, slice, 0) >= freeWords(hem, slice, 1)
                   ? 0
                   : 1;
    }
    BankState &b = state(hem, slice, bank);
    if (b.next + words > kBankWords) {
        fatal("MemAllocator: %s slice %d bank %d exhausted "
              "(%d words requested, %d free)",
              hemName(hem), slice, bank, words, kBankWords - b.next);
    }
    const MemAddr addr =
        static_cast<MemAddr>(bank * kBankWords + b.next);
    b.next += words;
    return GlobalAddr{hem, slice, addr};
}

GlobalAddr
MemAllocator::allocStriped(Hemisphere hem, int first_slice, int count,
                           int words, int bank)
{
    TSP_ASSERT(count >= 1 &&
               first_slice + count <= kMemSlicesPerHem);
    // All stripes must land at the same offset: find a common bank
    // and offset across the slices.
    int use_bank = bank;
    if (use_bank < 0) {
        // Pick the bank whose *minimum* free space across slices is
        // largest.
        int best_free = -1;
        for (int b = 0; b < kMemBanks; ++b) {
            int min_free = kBankWords;
            for (int s = 0; s < count; ++s) {
                min_free = std::min(
                    min_free, freeWords(hem, first_slice + s, b));
            }
            if (min_free > best_free) {
                best_free = min_free;
                use_bank = b;
            }
        }
    }
    // Common offset = max of the slices' bump pointers.
    int offset = 0;
    for (int s = 0; s < count; ++s) {
        offset = std::max(offset,
                          state(hem, first_slice + s, use_bank).next);
    }
    if (offset + words > kBankWords) {
        fatal("MemAllocator: striped alloc of %d words over slices "
              "%d..%d bank %d does not fit",
              words, first_slice, first_slice + count - 1, use_bank);
    }
    for (int s = 0; s < count; ++s)
        state(hem, first_slice + s, use_bank).next = offset + words;
    return GlobalAddr{hem, first_slice,
                      static_cast<MemAddr>(use_bank * kBankWords +
                                           offset)};
}

int
MemAllocator::bestSlice(Hemisphere hem, int lo, int hi, int words) const
{
    TSP_ASSERT(lo >= 0 && hi < kMemSlicesPerHem && lo <= hi);
    int best = -1;
    int best_free = words - 1;
    for (int s = lo; s <= hi; ++s) {
        const int f = std::max(freeWords(hem, s, 0),
                               freeWords(hem, s, 1));
        if (f > best_free) {
            best_free = f;
            best = s;
        }
    }
    return best;
}

GlobalAddr
MemAllocator::zeroAddr(Hemisphere hem) const
{
    return GlobalAddr{hem, 0, 0};
}

} // namespace tsp
