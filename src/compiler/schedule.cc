#include "compiler/schedule.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "icu/barrier.hh"

namespace tsp {

Cycle
ScheduledProgram::lastCycle() const
{
    Cycle last = 0;
    for (const auto &e : events_)
        last = std::max(last, e.cycle);
    return last;
}

std::size_t
ScheduledProgram::instructionCount(const AsmProgram &prog)
{
    std::size_t n = 0;
    for (const auto &[id, q] : prog.queues)
        n += q.size();
    return n;
}

AsmProgram
ScheduledProgram::toAsm(bool with_preamble,
                        bool compress_repeats) const
{
    // Group by queue, then sort each queue by time.
    std::map<int, std::vector<const ScheduledInst *>> by_queue;
    for (const auto &e : events_)
        by_queue[e.icu.id].push_back(&e);

    if (with_preamble) {
        // Every participating queue takes part in the barrier.
        for (int i = 0; i < kNumIcus; ++i)
            by_queue[i]; // Ensure the section exists.
    }

    AsmProgram out;
    for (auto &[icu_id, list] : by_queue) {
        std::stable_sort(list.begin(), list.end(),
                         [](const ScheduledInst *a,
                            const ScheduledInst *b) {
                             return a->cycle < b->cycle;
                         });
        std::vector<Instruction> &queue = out.queues[icu_id];
        Cycle t = 0;          // Next free dispatch cycle.
        Cycle last = ~Cycle{0}; // Cycle of the previous event.
        bool co_issued = false;
        if (with_preamble) {
            Instruction pre;
            if (icu_id == 0) {
                pre.op = Opcode::Notify; // The designated notifier.
                queue.push_back(pre);
                t = 1;
            } else {
                pre.op = Opcode::Sync;
                queue.push_back(pre);
                t = kBarrierLatency; // Dispatch resumes at release.
            }
        }
        for (std::size_t i = 0; i < list.size();) {
            const ScheduledInst *e = list[i];
            if (e->cycle + 1 == t && e->cycle == last) {
                // Second event in the same cycle: legal only as a MEM
                // dual-issue (read one bank + write the other).
                if (IcuId{icu_id}.kind() != SliceKind::MEM ||
                    co_issued) {
                    panic("schedule: %s over-issued at cycle %llu "
                          "(%s after %s)",
                          IcuId{icu_id}.name().c_str(),
                          static_cast<unsigned long long>(e->cycle),
                          e->inst.toString().c_str(),
                          queue.back().toString().c_str());
                }
                Instruction co = e->inst;
                co.flags |= Instruction::kFlagCoIssue;
                queue.push_back(co);
                co_issued = true;
                ++i;
                continue;
            }
            if (e->cycle < t) {
                panic("schedule: %s double-booked at cycle %llu "
                      "(%s vs previous instruction)",
                      IcuId{icu_id}.name().c_str(),
                      static_cast<unsigned long long>(e->cycle),
                      e->inst.toString().c_str());
            }
            if (e->cycle > t) {
                Instruction nop;
                nop.op = Opcode::Nop;
                nop.imm0 = static_cast<std::uint32_t>(e->cycle - t);
                queue.push_back(nop);
                t = e->cycle;
            }

            // Repeat compression: a run of identical instructions at
            // a uniform cadence becomes [inst, (NOP d-1), Repeat].
            std::size_t run_len = 1;
            Cycle gap = 0;
            if (compress_repeats && i + 1 < list.size() &&
                list[i + 1]->cycle > e->cycle) {
                gap = list[i + 1]->cycle - e->cycle;
                while (i + run_len < list.size()) {
                    const ScheduledInst *n = list[i + run_len];
                    const ScheduledInst *p = list[i + run_len - 1];
                    if (!(n->inst == e->inst) ||
                        n->cycle != p->cycle + gap) {
                        break;
                    }
                    ++run_len;
                }
                // The event after the run must not co-issue with the
                // run's tail (cannot express that after a Repeat).
                if (i + run_len < list.size() &&
                    list[i + run_len]->cycle ==
                        list[i + run_len - 1]->cycle) {
                    --run_len;
                }
            }

            if (run_len >= 4) {
                queue.push_back(e->inst);
                if (gap > 1) {
                    Instruction nop;
                    nop.op = Opcode::Nop;
                    nop.imm0 = static_cast<std::uint32_t>(gap - 1);
                    queue.push_back(nop);
                }
                Instruction rep;
                rep.op = Opcode::Repeat;
                rep.imm0 = static_cast<std::uint32_t>(run_len - 1);
                rep.imm1 = static_cast<std::uint32_t>(gap);
                queue.push_back(rep);
                const Cycle last_fire =
                    e->cycle + gap * static_cast<Cycle>(run_len - 1);
                t = last_fire + 1;
                last = last_fire;
                co_issued = false;
                i += run_len;
                continue;
            }

            queue.push_back(e->inst);
            t += 1;
            last = e->cycle;
            co_issued = false;
            ++i;
        }
    }
    return out;
}

std::string
ScheduledProgram::gantt(Cycle from, Cycle to) const
{
    TSP_ASSERT(to > from);
    // Collect involved queues in id order.
    std::map<int, std::set<Cycle>> marks;
    for (const auto &e : events_) {
        if (e.cycle >= from && e.cycle < to)
            marks[e.icu.id].insert(e.cycle);
    }

    std::ostringstream os;
    os << strformat("%-12s ", "cycle");
    // Column header every 10 cycles.
    for (Cycle c = from; c < to; ++c)
        os << (c % 10 == 0 ? '|' : ' ');
    os << '\n';
    for (const auto &[icu_id, cols] : marks) {
        os << strformat("%-12s ", IcuId{icu_id}.name().c_str());
        for (Cycle c = from; c < to; ++c)
            os << (cols.count(c) ? '#' : '.');
        os << '\n';
    }
    return os.str();
}

std::string
ScheduledProgram::listing() const
{
    std::vector<const ScheduledInst *> sorted;
    sorted.reserve(events_.size());
    for (const auto &e : events_)
        sorted.push_back(&e);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ScheduledInst *a, const ScheduledInst *b) {
                         if (a->cycle != b->cycle)
                             return a->cycle < b->cycle;
                         return a->icu.id < b->icu.id;
                     });
    std::ostringstream os;
    for (const ScheduledInst *e : sorted) {
        os << strformat("%8llu  %-12s %s\n",
                        static_cast<unsigned long long>(e->cycle),
                        e->icu.name().c_str(),
                        e->inst.toString().c_str());
    }
    return os.str();
}

} // namespace tsp
