#include "compiler/tensor.hh"

#include "common/logging.hh"

namespace tsp {

WeightTile
allocWeightTile(MemAllocator &alloc, Hemisphere hem, int first_slice,
                int rows)
{
    TSP_ASSERT(rows >= 1 && rows <= kMxmDim);
    WeightTile w;
    w.hem = hem;
    w.firstSlice = first_slice;
    w.rows = rows;
    const GlobalAddr a = alloc.allocStriped(
        hem, first_slice, WeightTile::kStripe, w.wordsPerSlice());
    w.base = a.addr;
    return w;
}

ConstQuad
allocConstQuad(MemAllocator &alloc, Hemisphere hem, int first_slice)
{
    ConstQuad q;
    for (int k = 0; k < 4; ++k)
        q.addr[k] = alloc.alloc(hem, first_slice + k, 1);
    return q;
}

} // namespace tsp
