/**
 * @file
 * Low-level timed instruction emission.
 *
 * Encapsulates the dataflow timing identities of the chip model, which
 * the compiler and simulator share through the ISA's temporal
 * parameters (paper III, Eq. 4):
 *
 *  - a MEM Read issued at t makes its vector visible at the slice's
 *    position at t + d_func(Read); it reaches position q after
 *    |q - pos| further hops;
 *  - a MEM Write issued at t samples its stream at the slice's
 *    position exactly at t;
 *  - a VXM/SXM op issued at t samples operands at its position at t
 *    and makes results visible there at t + d_func(op);
 *  - MXM ABC consumes one activation per cycle starting at its issue
 *    cycle; ACC makes result i visible at issue + i + d_func(Acc).
 */

#ifndef TSP_COMPILER_BUILDER_HH
#define TSP_COMPILER_BUILDER_HH

#include "compiler/schedule.hh"
#include "compiler/tensor.hh"

namespace tsp {

/** Emits exactly-timed instructions into a ScheduledProgram. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(ScheduledProgram &prog) : prog_(prog) {}

    /** @return the program being built. */
    ScheduledProgram &program() { return prog_; }

    // ----- MEM -----

    /** Emits a Read at @p issue placing the word on stream @p s. */
    void read(const GlobalAddr &a, StreamRef s, Cycle issue);

    /**
     * Emits a Read timed so its vector is visible at position
     * @p consumer_pos exactly at @p at.
     *
     * @return the issue cycle. Panics if @p at is too early.
     */
    Cycle readArriving(const GlobalAddr &a, StreamRef s,
                       SlicePos consumer_pos, Cycle at);

    /** Emits a Write sampling stream @p s at @p issue. */
    void write(const GlobalAddr &a, StreamRef s, Cycle issue);

    /** @return arrival cycle at @p q of a Read issued at @p issue. */
    static Cycle
    readArrival(const GlobalAddr &a, SlicePos q, Cycle issue)
    {
        return issue + opTiming(Opcode::Read).dFunc +
               Layout::transitDelay(a.pos(), q);
    }

    // ----- VXM -----

    /**
     * Emits a binary VXM op on @p alu at @p issue.
     * @return the cycle the result is visible at the VXM.
     */
    Cycle vxmBinary(int alu, Opcode op, DType t, StreamRef a,
                    StreamRef b, StreamRef dst, Cycle issue);

    /** Emits a unary VXM op (imm used by Shift). */
    Cycle vxmUnary(int alu, Opcode op, DType t, StreamRef a,
                   StreamRef dst, Cycle issue, std::uint32_t imm = 0);

    /** Emits a Convert on @p alu. */
    Cycle vxmConvert(int alu, DType from, DType to, StreamRef a,
                     StreamRef dst, Cycle issue);

    // ----- MXM -----

    /**
     * Emits the LW burst + IW installing @p tile into @p plane.
     * Weight rows are read from the tile's 16 slices, timed to arrive
     * 16 per cycle (rows beyond the valid count are zero-padded in
     * SRAM by the runtime's DMA, so the full 320 rows always stream).
     *
     * @param streams_base first of 16 stream ids used for the burst.
     * @param start LW issue cycle at the MXM (first burst).
     * @return the cycle after IW completes (weights usable).
     */
    Cycle installWeights(int plane, const WeightTile &tile,
                         StreamId streams_base, Direction dir,
                         Cycle start);

    /** Emits Abc on @p plane's activation queue. */
    void abc(int plane, StreamRef act, std::uint32_t count,
             bool accumulate, DType atype, Cycle issue);

    /** Emits Acc draining @p count vectors onto @p dst (SG4). */
    void acc(int plane, StreamRef dst, std::uint32_t count,
             Cycle issue);

    // ----- SXM -----

    /** Emits an SXM op on the given unit of @p hem at @p issue. */
    Cycle sxm(Hemisphere hem, SxmUnit unit, Instruction inst,
              Cycle issue);

    // ----- ICU -----

    /** Emits Sync on every queue and Notify on queue 0 at cycle 0. */
    void preamble();

  private:
    ScheduledProgram &prog_;
};

} // namespace tsp

#endif // TSP_COMPILER_BUILDER_HH
