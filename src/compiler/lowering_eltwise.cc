/**
 * @file
 * Non-MXM layer engines: max pooling (the Fig. 11 workload),
 * quantized residual addition, and global average pooling. All stream
 * vectors through the VXM at the chip bisection, sharing the per-
 * hemisphere chain resource with the conv drains (serialized via
 * chainFree), and follow the same output conventions: primary rows
 * flow past the VXM to the opposite hemisphere, halo duplicates are
 * direction-flipped through a copy ALU.
 */

#include <algorithm>

#include "common/logging.hh"
#include "compiler/lowering.hh"
#include "compiler/lowering_internal.hh"

namespace tsp {

namespace {

/** Direction a read from @p a must flow to reach the VXM. */
Direction
dirToVxm(const GlobalAddr &a)
{
    return Layout::flowDirection(a.pos(), Layout::vxm);
}

} // namespace

/**
 * Eltwise-style layers consume their operands *at* the chip
 * bisection, so the two hemispheres' engines share the same stream
 * registers there; they run in disjoint time windows gated on both
 * engines' chains (a conv drain, by contrast, owns a per-hemisphere
 * partition of the position-47 streams and pipelines freely).
 */
Cycle
Lowering::globalChainGate()
{
    Cycle g = ScheduledProgram::kProgramStart + 128;
    for (int e = 0; e < 2; ++e) {
        g = std::max(g, engine(e).chainFree);
        g = std::max(g, engine(e).chainTail);
    }
    return g;
}

void
Lowering::setGlobalChain(Cycle c)
{
    for (int e = 0; e < 2; ++e) {
        engine(e).chainFree = c;
        engine(e).chainTail = c;
        engine(e).chainSig = -1;
    }
}

namespace {

Cycle
leadToVxm(const GlobalAddr &a)
{
    return opTiming(Opcode::Read).dFunc +
           Layout::transitDelay(a.pos(), Layout::vxm);
}

} // namespace

// --------------------------------------------------------------------
// Max pooling
// --------------------------------------------------------------------

void
Lowering::maxPoolEngine(int e, const LoweredTensor &in, int k,
                        int stride, int pad, LoweredTensor &out)
{
    Engine &en = engine(e);
    const StreamRoles &r = en.roles;
    const ActTensor &it = in.t;
    ActTensor &ot = out.t;
    const SlicePos vxm = Layout::vxm;

    const int y_lo = e == 0 ? 0 : ot.splitY;
    const int y_hi = e == 0 ? ot.splitY : ot.height;
    if (y_hi <= y_lo)
        return;

    const int kk = k * k;
    Cycle slot = globalChainGate();
    const Cycle in_max_ready = pipelined_ ? 0 : in.maxReady();

    for (int oy = y_lo; oy < y_hi; ++oy) {
        for (int ox = 0; ox < ot.width; ++ox) {
            for (int kg = 0; kg < ot.kgCount; ++kg) {
                // Gather the k*k input addresses (row-major window).
                std::vector<GlobalAddr> src(
                    static_cast<std::size_t>(kk));
                std::vector<Cycle> rdy(static_cast<std::size_t>(kk),
                                       in_max_ready);
                for (int j = 0; j < kk; ++j) {
                    const int iy = oy * stride - pad + j / k;
                    const int ix = ox * stride - pad + j % k;
                    if (iy < 0 || iy >= it.height || ix < 0 ||
                        ix >= it.width) {
                        src[static_cast<std::size_t>(j)] =
                            en.padNeg128[j % 3];
                        rdy[static_cast<std::size_t>(j)] = 0;
                        continue;
                    }
                    if (!it.stores(e, iy)) {
                        panic("maxPoolEngine: input row y=%d beyond "
                              "engine %d halo",
                              iy, e);
                    }
                    src[static_cast<std::size_t>(j)] =
                        it.addrOf(e, iy, ix, kg);
                    if (pipelined_) {
                        rdy[static_cast<std::size_t>(j)] =
                            (*in.ready[e])[static_cast<std::size_t>(
                                it.localRow(e, iy, ix, kg))];
                    }
                }

                // Fast plan (k == 3 only): per window row, a pair
                // read at slot + row and a single at slot + row + 1;
                // a three-ALU max tree finishes at slot + 5, one
                // element every 3 cycles. Falls back to a fully
                // serial chain when two same-cycle reads would hit
                // one slice.
                const bool try_fast = k == 3;
                auto fastArrival = [&](int j) {
                    const int row = j / 3;
                    const int col = j % 3;
                    return slot + static_cast<Cycle>(row) +
                           (col == 2 ? 1 : 0);
                };
                auto serialArrival = [&](int j) {
                    return slot + static_cast<Cycle>(j);
                };

                bool fast = try_fast;
                // +1 for the direction-flipping final copy stage.
                const Cycle fast_out = 6;
                const Cycle serial_out = static_cast<Cycle>(kk) + 1;

                const GlobalAddr primary = ot.addrOf(e, oy, ox, kg);
                const bool has_halo = ot.stores(1 - e, oy);
                const GlobalAddr halo_a =
                    has_halo ? ot.addrOf(1 - e, oy, ox, kg)
                             : GlobalAddr{};

                auto buildBatch = [&](bool use_fast,
                                      std::vector<Access> &batch) {
                    batch.clear();
                    const Cycle out_off =
                        use_fast ? fast_out : serial_out;
                    for (int j = 0; j < kk; ++j) {
                        const GlobalAddr &a =
                            src[static_cast<std::size_t>(j)];
                        const Cycle at = use_fast ? fastArrival(j)
                                                  : serialArrival(j);
                        batch.push_back(
                            {a, at - leadToVxm(a), false});
                    }
                    batch.push_back(
                        {primary,
                         slot + out_off +
                             Layout::transitDelay(vxm,
                                                  primary.pos()),
                         true});
                    if (has_halo) {
                        batch.push_back(
                            {halo_a,
                             slot + out_off + 1 +
                                 Layout::transitDelay(vxm,
                                                      halo_a.pos()),
                             true});
                    }
                };

                auto hasInternalConflict =
                    [&](const std::vector<Access> &batch) {
                        for (std::size_t i = 0; i < batch.size();
                             ++i) {
                            for (std::size_t j2 = i + 1;
                                 j2 < batch.size(); ++j2) {
                                if (batch[i].a.hem ==
                                        batch[j2].a.hem &&
                                    batch[i].a.slice ==
                                        batch[j2].a.slice &&
                                    batch[i].c == batch[j2].c &&
                                    batch[i].write ==
                                        batch[j2].write) {
                                    return true;
                                }
                            }
                        }
                        return false;
                    };

                // Honor row readiness.
                for (int j = 0; j < kk; ++j) {
                    const GlobalAddr &a =
                        src[static_cast<std::size_t>(j)];
                    const Cycle at =
                        (fast ? fastArrival(j) : serialArrival(j));
                    const Cycle off = at - slot;
                    const Cycle need =
                        rdy[static_cast<std::size_t>(j)] +
                        leadToVxm(a);
                    if (slot + off < need)
                        slot = need - off;
                }

                std::vector<Access> batch;
                if (fast) {
                    buildBatch(true, batch);
                    if (hasInternalConflict(batch))
                        fast = false;
                }
                for (int attempt = 0;; ++attempt) {
                    if (attempt > 100000)
                        panic("maxPoolEngine: port livelock");
                    buildBatch(fast, batch);
                    if (tryReserveAll(batch))
                        break;
                    ++slot;
                }

                Cycle tree_vis;
                StreamRef tree_s;
                if (fast) {
                    // Reads: pairs on streams 16/17, singles on 18.
                    for (int row = 0; row < 3; ++row) {
                        const GlobalAddr &a0 =
                            src[static_cast<std::size_t>(3 * row)];
                        const GlobalAddr &a1 = src
                            [static_cast<std::size_t>(3 * row + 1)];
                        const GlobalAddr &a2 = src
                            [static_cast<std::size_t>(3 * row + 2)];
                        reservedRead(a0,
                                     StreamRef{16, dirToVxm(a0)},
                                     vxm, fastArrival(3 * row));
                        reservedRead(a1,
                                     StreamRef{17, dirToVxm(a1)},
                                     vxm, fastArrival(3 * row + 1));
                        reservedRead(a2,
                                     StreamRef{18, dirToVxm(a2)},
                                     vxm, fastArrival(3 * row + 2));
                        // P_row = max(pair) on stage1(0).
                        kb_.vxmBinary(en.aluBase + 0, Opcode::Max,
                                      DType::Int8,
                                      StreamRef{16, dirToVxm(a0)},
                                      StreamRef{17, dirToVxm(a1)},
                                      r.stage1(0),
                                      slot + static_cast<Cycle>(row));
                        // M_row = max(P_row, single): rows 0 and 2
                        // land on stage1(1), row 1 on stage1(2).
                        kb_.vxmBinary(
                            en.aluBase + 1, Opcode::Max, DType::Int8,
                            r.stage1(0),
                            StreamRef{18, dirToVxm(a2)},
                            row == 1 ? r.stage1(2) : r.stage1(1),
                            slot + static_cast<Cycle>(row) + 1);
                    }
                    // Combine on stage1(3): carry M0, fold M1, M2.
                    kb_.vxmBinary(en.aluBase + 2, Opcode::Max,
                                  DType::Int8, r.stage1(1),
                                  r.stage1(1), r.stage1(3), slot + 2);
                    kb_.vxmBinary(en.aluBase + 2, Opcode::Max,
                                  DType::Int8, r.stage1(3),
                                  r.stage1(2), r.stage1(3), slot + 3);
                    kb_.vxmBinary(en.aluBase + 2, Opcode::Max,
                                  DType::Int8, r.stage1(3),
                                  r.stage1(1), r.stage1(3), slot + 4);
                    tree_vis = slot + fast_out - 1;
                    tree_s = r.stage1(3);
                } else {
                    // Serial fallback: self-chained running max.
                    for (int j = 0; j < kk; ++j) {
                        const GlobalAddr &a =
                            src[static_cast<std::size_t>(j)];
                        const StreamRef in_s{16, dirToVxm(a)};
                        reservedRead(a, in_s, vxm,
                                     serialArrival(j));
                        if (j == 0) {
                            kb_.vxmBinary(en.aluBase + 0,
                                          Opcode::Max, DType::Int8,
                                          in_s, in_s, r.stage1(0),
                                          slot);
                        } else {
                            kb_.vxmBinary(
                                en.aluBase + 0, Opcode::Max,
                                DType::Int8, r.stage1(0), in_s,
                                r.stage1(0),
                                slot + static_cast<Cycle>(j));
                        }
                    }
                    tree_vis = slot + serial_out - 1;
                    tree_s = r.stage1(0);
                }

                // Flip toward the engine's own hemisphere.
                kb_.vxmBinary(en.aluBase + 3, Opcode::Max,
                              DType::Int8, tree_s, tree_s,
                              r.finalOwn(), tree_vis);
                const Cycle vis = tree_vis + 1;
                const StreamRef final_s = r.finalOwn();

                // Outputs follow the conv conventions: primary to
                // the opposite hemisphere on fromMxm, halo flipped.
                const Cycle w_issue =
                    vis + Layout::transitDelay(vxm, primary.pos());
                reservedWrite(primary, final_s, w_issue);
                (*out.ready[e])[static_cast<std::size_t>(
                    ot.localRow(e, oy, ox, kg))] = w_issue + 1;

                if (has_halo) {
                    kb_.vxmBinary(en.aluBase + 4, Opcode::Max,
                                  DType::Int8, final_s, final_s,
                                  r.haloOut(), vis);
                    const Cycle h_issue =
                        vis + 1 +
                        Layout::transitDelay(vxm, halo_a.pos());
                    reservedWrite(halo_a, r.haloOut(), h_issue);
                    (*out.ready[1 - e])[static_cast<std::size_t>(
                        ot.localRow(1 - e, oy, ox, kg))] =
                        h_issue + 1;
                }

                slot += fast ? 3 : static_cast<Cycle>(kk) + 2;
            }
        }
    }
    setGlobalChain(slot + 8);
}

LoweredTensor
Lowering::maxPool(const LoweredTensor &in, int k, int stride, int pad,
                  int out_halo)
{
    const int out_h = (in.t.height + 2 * pad - k) / stride + 1;
    const int out_w = (in.t.width + 2 * pad - k) / stride + 1;
    Hemisphere hems[2] = {Hemisphere::West, Hemisphere::East};
    int avoid = 0;
    if (const int ig = groupOf(in); ig >= 0)
        avoid |= 1 << ig;
    LoweredTensor out = allocOutput(out_h, out_w, in.t.channels,
                                    out_halo, hems, avoid);
    const Cycle begin = lastEvent_;
    for (int e = 0; e < 2; ++e)
        maxPoolEngine(e, in, k, stride, pad, out);
    recordLayer("maxpool", begin);
    return out;
}

// --------------------------------------------------------------------
// Residual addition
// --------------------------------------------------------------------

void
Lowering::eltwiseAddEngine(int e, const LoweredTensor &a,
                           const LoweredTensor &b, const ConstQuad &sa,
                           const ConstQuad &sb, bool relu,
                           LoweredTensor &out)
{
    Engine &en = engine(e);
    const StreamRoles &r = en.roles;
    const ActTensor &at = a.t;
    const ActTensor &bt = b.t;
    ActTensor &ot = out.t;
    const SlicePos vxm = Layout::vxm;
    TSP_ASSERT(at.height == bt.height && at.width == bt.width &&
               at.kgCount == bt.kgCount);

    const int y_lo = e == 0 ? 0 : ot.splitY;
    const int y_hi = e == 0 ? ot.splitY : ot.height;
    if (y_hi <= y_lo)
        return;

    Cycle slot = globalChainGate();
    const Cycle max_ready =
        pipelined_ ? 0 : std::max(a.maxReady(), b.maxReady());

    for (int oy = y_lo; oy < y_hi; ++oy) {
        for (int ox = 0; ox < ot.width; ++ox) {
            for (int kg = 0; kg < ot.kgCount; ++kg) {
                const GlobalAddr src_a = at.addrOf(e, oy, ox, kg);
                const GlobalAddr src_b = bt.addrOf(e, oy, ox, kg);
                Cycle rdy_a = max_ready, rdy_b = max_ready;
                if (pipelined_) {
                    rdy_a = (*a.ready[e])[static_cast<std::size_t>(
                        at.localRow(e, oy, ox, kg))];
                    rdy_b = (*b.ready[e])[static_cast<std::size_t>(
                        bt.localRow(e, oy, ox, kg))];
                }
                slot = std::max(slot, rdy_a + leadToVxm(src_a));
                slot = std::max(slot, rdy_b + leadToVxm(src_b));

                // Stream budget (see lowering.hh): all 7 fp32/const
                // quads plus three singles packed into quad 28-31;
                // the adder borrows quad 16-19, which carries no
                // traffic during the globally gated eltwise window.
                const StreamRef in_a{28, dirToVxm(src_a)};
                const StreamRef in_b{31, dirToVxm(src_b)};
                const StreamRef mulb_out{20, r.fromMxm};
                const StreamRef add_out{16, r.fromMxm};
                const StreamRef int8_out{29, r.fromMxm};

                // Probe every access of the element as a unit.
                const GlobalAddr primary = ot.addrOf(e, oy, ox, kg);
                const bool has_halo = ot.stores(1 - e, oy);
                const GlobalAddr halo_a =
                    has_halo ? ot.addrOf(1 - e, oy, ox, kg)
                             : GlobalAddr{};
                constexpr Cycle out_lat = 8;
                for (int attempt = 0;; ++attempt) {
                    if (attempt > 100000)
                        panic("eltwiseAddEngine: port livelock");
                    std::vector<Access> batch;
                    batch.push_back(
                        {src_a, slot - leadToVxm(src_a), false});
                    batch.push_back(
                        {src_b, slot - leadToVxm(src_b), false});
                    for (int q = 0; q < 4; ++q) {
                        batch.push_back(
                            {sa.addr[q],
                             slot + 2 - leadToVxm(sa.addr[q]),
                             false});
                        batch.push_back(
                            {sb.addr[q],
                             slot + 2 - leadToVxm(sb.addr[q]),
                             false});
                    }
                    batch.push_back(
                        {primary,
                         slot + out_lat +
                             Layout::transitDelay(vxm,
                                                  primary.pos()),
                         true});
                    if (has_halo) {
                        batch.push_back(
                            {halo_a,
                             slot + out_lat + 1 +
                                 Layout::transitDelay(vxm,
                                                      halo_a.pos()),
                             true});
                    }
                    if (tryReserveAll(batch))
                        break;
                    ++slot;
                }
                reservedRead(src_a, in_a, vxm, slot);
                reservedRead(src_b, in_b, vxm, slot);

                // Pipeline (per element, one producing stage per
                // stream so back-to-back elements never collide on a
                // flowing register; inputs always flow toMxm thanks
                // to the uniform tensor placement, so the fromMxm
                // quad 16-19 is free for the adder):
                //  s:   cvtA -> stage1 (s8-11); cvtB -> stage2
                //       (s12-15)
                //  s+2: mulA (stage1 x sa) -> stage3 (s24-27);
                //       mulB (stage2 x sb) -> s20-23
                //  s+4: add -> s16-19
                //  s+5: cvt fp32->int8 -> s29 fromMxm
                //  s+7: relu/copy -> finalOwn (s29 toMxm)
                kb_.vxmConvert(en.aluBase + 0, DType::Int8,
                               DType::Fp32, in_a, r.stage1(0), slot);
                kb_.vxmConvert(en.aluBase + 1, DType::Int8,
                               DType::Fp32, in_b, r.stage2(0), slot);
                for (int q = 0; q < 4; ++q) {
                    reservedRead(sa.addr[q], r.bias(q), vxm,
                                 slot + 2);
                    reservedRead(sb.addr[q], r.scale(q), vxm,
                                 slot + 2);
                }
                kb_.vxmBinary(en.aluBase + 2, Opcode::Mul,
                              DType::Fp32, r.stage1(0), r.bias(0),
                              r.stage3(0), slot + 2);
                kb_.vxmBinary(en.aluBase + 3, Opcode::Mul,
                              DType::Fp32, r.stage2(0), r.scale(0),
                              mulb_out, slot + 2);
                kb_.vxmBinary(en.aluBase + 4, Opcode::Add,
                              DType::Fp32, r.stage3(0), mulb_out,
                              add_out, slot + 4);
                kb_.vxmConvert(en.aluBase + 5, DType::Fp32,
                               DType::Int8, add_out, int8_out,
                               slot + 5);
                if (relu) {
                    kb_.vxmUnary(en.aluBase + 6, Opcode::Relu,
                                 DType::Int8, int8_out,
                                 r.finalOwn(), slot + 7);
                } else {
                    kb_.vxmBinary(en.aluBase + 6, Opcode::Max,
                                  DType::Int8, int8_out, int8_out,
                                  r.finalOwn(), slot + 7);
                }
                const Cycle vis = slot + 8;
                const StreamRef final_s = r.finalOwn();

                const Cycle w_issue =
                    vis + Layout::transitDelay(vxm, primary.pos());
                reservedWrite(primary, final_s, w_issue);
                (*out.ready[e])[static_cast<std::size_t>(
                    ot.localRow(e, oy, ox, kg))] = w_issue + 1;

                if (has_halo) {
                    kb_.vxmBinary(en.aluBase + 7, Opcode::Max,
                                  DType::Int8, final_s, final_s,
                                  r.haloOut(), vis);
                    const Cycle h_issue =
                        vis + 1 +
                        Layout::transitDelay(vxm, halo_a.pos());
                    reservedWrite(halo_a, r.haloOut(), h_issue);
                    (*out.ready[1 - e])[static_cast<std::size_t>(
                        ot.localRow(1 - e, oy, ox, kg))] =
                        h_issue + 1;
                }
                slot += 1;
            }
        }
    }
    setGlobalChain(slot + 9);
}

LoweredTensor
Lowering::copyTensor(const LoweredTensor &src, int avoid_mask)
{
    const ActTensor &st = src.t;
    Hemisphere hems[2] = {st.part[0].hem, st.part[1].hem};
    LoweredTensor out =
        allocOutput(st.height, st.width, st.channels, st.halo, hems,
                    avoid_mask);
    // Preserve the exact stored-row structure (including halos).
    TSP_ASSERT(out.t.splitY == st.splitY && out.t.halo == st.halo);

    for (int e = 0; e < 2; ++e) {
        const StripedTensor &sp = st.part[e];
        if (sp.rows == 0)
            continue;
        Cycle t = std::max(engine(e).chainFree,
                           ScheduledProgram::kProgramStart + 128);
        const Cycle max_ready = pipelined_ ? 0 : src.maxReady();
        // Slice-major order: consecutive issues come from ONE source
        // slice, so their values ride distinct flow lines of the
        // single copy stream; a gap separates slice groups.
        for (int s_idx = 0; s_idx < sp.nSlices; ++s_idx) {
            for (int row = s_idx; row < sp.rows;
                 row += sp.nSlices) {
                const GlobalAddr from = sp.rowAddr(row);
                const GlobalAddr to = out.t.part[e].rowAddr(row);
                const Cycle rdy =
                    pipelined_ ? (*src.ready[e])[static_cast<
                                     std::size_t>(row)]
                               : max_ready;
                const Cycle lead =
                    opTiming(Opcode::Read).dFunc +
                    Layout::transitDelay(from.pos(), to.pos());
                Cycle issue = std::max(t, rdy);
                for (int attempt = 0;; ++attempt) {
                    if (attempt > 100000)
                        panic("copyTensor: port livelock");
                    std::vector<Access> batch;
                    batch.push_back({from, issue, false});
                    batch.push_back({to, issue + lead, true});
                    if (tryReserveAll(batch))
                        break;
                    ++issue;
                }
                const StreamRef s{
                    31,
                    Layout::flowDirection(from.pos(), to.pos())};
                kb_.read(from, s, issue);
                kb_.write(to, s, issue + lead);
                bumpLast(issue + lead + 1);
                (*out.ready[e])[static_cast<std::size_t>(row)] =
                    issue + lead + 1;
                t = issue + 1;
            }
            t += Layout::numPositions; // Drain the line space.
        }
    }
    return out;
}

LoweredTensor
Lowering::residualAdd(const LoweredTensor &a, const LoweredTensor &b,
                      float sa, float sb, bool relu, int out_halo)
{
    TSP_ASSERT(a.t.channels == b.t.channels);
    Hemisphere hems[2] = {Hemisphere::West, Hemisphere::East};
    int avoid = 0;
    if (const int ga = groupOf(a); ga >= 0)
        avoid |= 1 << ga;
    if (const int gb = groupOf(b); gb >= 0)
        avoid |= 1 << gb;

    // The engine issues both operand reads in the same cycle; if the
    // operands landed in the same slice group, stage one of them
    // into a fresh group first (escape hatch — the group rotation
    // avoids this in practice).
    const LoweredTensor *pb = &b;
    LoweredTensor staged;
    if (groupOf(a) >= 0 && groupOf(a) == groupOf(b)) {
        staged = copyTensor(b, avoid);
        if (const int gs = groupOf(staged); gs >= 0)
            avoid |= 1 << gs;
        pb = &staged;
    }

    LoweredTensor out = allocOutput(a.t.height, a.t.width,
                                    a.t.channels, out_halo, hems,
                                    avoid);

    std::vector<float> sav(kLanes, sa), sbv(kLanes, sb);
    ConstQuad saq[2], sbq[2];
    for (int e = 0; e < 2; ++e) {
        const Hemisphere hem =
            e == 0 ? Hemisphere::West : Hemisphere::East;
        saq[e] = allocConstQuad(alloc_, hem, kBiasFirst);
        sbq[e] = allocConstQuad(alloc_, hem, kScaleFirst);
        image_.addFp32Quad(saq[e].addr, sav.data(), kLanes);
        image_.addFp32Quad(sbq[e].addr, sbv.data(), kLanes);
    }

    const Cycle begin = lastEvent_;
    for (int e = 0; e < 2; ++e)
        eltwiseAddEngine(e, a, *pb, saq[e], sbq[e], relu, out);
    recordLayer("residual", begin);
    return out;
}

// --------------------------------------------------------------------
// Global average pooling
// --------------------------------------------------------------------

LoweredTensor
Lowering::globalAvgPool(const LoweredTensor &in, float scale)
{
    const ActTensor &it = in.t;
    Hemisphere hems[2] = {Hemisphere::West, Hemisphere::East};
    int avoid = 0;
    if (const int ig = groupOf(in); ig >= 0)
        avoid |= 1 << ig;
    LoweredTensor out =
        allocOutput(1, 1, it.channels, /*halo=*/0, hems, avoid);
    const Cycle layer_begin = lastEvent_;

    const SlicePos vxm = Layout::vxm;
    std::vector<float> scalev(kLanes, scale);

    // Per-engine partial sums land in int32 quads; the west engine
    // combines and requantizes.
    std::vector<ConstQuad> partial[2]; // [e][kg]
    std::vector<Cycle> partial_ready[2];

    for (int e = 0; e < 2; ++e) {
        Engine &en = engine(e);
        const StreamRoles &r = en.roles;
        const int y_lo = e == 0 ? 0 : it.splitY;
        const int y_hi = e == 0 ? it.splitY : it.height;
        if (y_hi <= y_lo)
            continue;

        Cycle slot = globalChainGate();
        const Cycle max_ready = pipelined_ ? 0 : in.maxReady();

        for (int kg = 0; kg < it.kgCount; ++kg) {
            // Seed the running sum with the zero quad.
            // Elements stream 1/cycle: cvt at s, add at s+2 chained
            // on stage2 (the running int32 sum).
            std::vector<std::pair<int, int>> pos;
            for (int y = y_lo; y < y_hi; ++y)
                for (int x = 0; x < it.width; ++x)
                    pos.emplace_back(y, x);

            // Find a feasible base slot for the whole run.
            Cycle base = slot;
            for (std::size_t i = 0; i < pos.size(); ++i) {
                const GlobalAddr a =
                    it.addrOf(e, pos[i].first, pos[i].second, kg);
                Cycle rdy = max_ready;
                if (pipelined_) {
                    rdy = (*in.ready[e])[static_cast<std::size_t>(
                        it.localRow(e, pos[i].first, pos[i].second,
                                    kg))];
                }
                const Cycle need = rdy + leadToVxm(a);
                if (base + static_cast<Cycle>(i) < need)
                    base = need - static_cast<Cycle>(i);
            }
            // Partial-sum destination quad (4 distinct slices).
            const Hemisphere qhem_probe =
                e == 0 ? Hemisphere::East : Hemisphere::West;
            ConstQuad q = allocConstQuad(alloc_, qhem_probe,
                                         kActFirst);
            for (int attempt = 0;; ++attempt) {
                if (attempt > 100000)
                    panic("globalAvgPool: port livelock");
                std::vector<Access> batch;
                for (std::size_t i = 0; i < pos.size(); ++i) {
                    const GlobalAddr a = it.addrOf(
                        e, pos[i].first, pos[i].second, kg);
                    batch.push_back(
                        {a,
                         base + static_cast<Cycle>(i) - leadToVxm(a),
                         false});
                }
                const Cycle sv =
                    base + static_cast<Cycle>(pos.size()) + 2;
                for (int c = 0; c < 4; ++c) {
                    batch.push_back(
                        {en.zeroQuad.addr[c],
                         base + 2 - leadToVxm(en.zeroQuad.addr[c]),
                         false});
                    batch.push_back(
                        {q.addr[c],
                         sv + Layout::transitDelay(
                                  vxm, q.addr[c].pos()),
                         true});
                }
                if (tryReserveAll(batch))
                    break;
                ++base;
            }

            // Zero-quad seed arrives when the first add needs it.
            for (int q = 0; q < 4; ++q) {
                reservedRead(en.zeroQuad.addr[q], r.stage2(q), vxm,
                             base + 2);
            }
            for (std::size_t i = 0; i < pos.size(); ++i) {
                const GlobalAddr a =
                    it.addrOf(e, pos[i].first, pos[i].second, kg);
                const Cycle s = base + static_cast<Cycle>(i);
                reservedRead(a, StreamRef{16, dirToVxm(a)}, vxm, s);
                kb_.vxmConvert(en.aluBase + 0, DType::Int8,
                               DType::Int32,
                               StreamRef{16, dirToVxm(a)},
                               r.stage1(0), s);
                kb_.vxmBinary(en.aluBase + 1, Opcode::AddSat,
                              DType::Int32, r.stage1(0), r.stage2(0),
                              r.stage2(0), s + 2);
            }
            const Cycle sum_vis =
                base + static_cast<Cycle>(pos.size()) + 2;

            // Write the partial quad (already reserved above).
            Cycle commit = 0;
            for (int c = 0; c < 4; ++c) {
                const Cycle wi =
                    sum_vis +
                    Layout::transitDelay(vxm, q.addr[c].pos());
                reservedWrite(q.addr[c], r.stage2(c), wi);
                commit = std::max(commit, wi + 1);
            }
            partial[e].push_back(q);
            partial_ready[e].push_back(commit);
            slot = sum_vis + 3;
        }
        setGlobalChain(slot);
    }

    // Combine + requantize on the west engine.
    Engine &en = engine(0);
    const StreamRoles &r = en.roles;
    ConstQuad sq = allocConstQuad(alloc_, en.hem, kScaleFirst);
    image_.addFp32Quad(sq.addr, scalev.data(), kLanes);

    for (int kg = 0; kg < it.kgCount; ++kg) {
        const bool have_east =
            static_cast<std::size_t>(kg) < partial[1].size();
        const ConstQuad &qa = partial[0][static_cast<std::size_t>(kg)];
        // Partial quads live wherever their producing engine could
        // write them; the reads must flow toward the VXM from there.
        const Direction da = dirToVxm(qa.addr[0]);
        Cycle t = globalChainGate();
        // Every quad component has its own transit; the arrival time
        // must clear the slowest one after its commit.
        for (int c = 0; c < 4; ++c) {
            t = std::max(
                t, partial_ready[0][static_cast<std::size_t>(kg)] +
                       leadToVxm(qa.addr[c]));
        }
        const ConstQuad &qb =
            have_east ? partial[1][static_cast<std::size_t>(kg)]
                      : en.zeroQuad;
        const Direction db = dirToVxm(qb.addr[0]);
        if (have_east) {
            for (int c = 0; c < 4; ++c) {
                t = std::max(
                    t,
                    partial_ready[1][static_cast<std::size_t>(kg)] +
                        leadToVxm(qb.addr[c]));
            }
        }
        const GlobalAddr out_primary = out.t.addrOf(0, 0, 0, kg);
        for (int attempt = 0;; ++attempt) {
            if (attempt > 100000)
                panic("globalAvgPool: combine port livelock");
            std::vector<Access> batch;
            for (int c = 0; c < 4; ++c) {
                batch.push_back(
                    {qa.addr[c], t - leadToVxm(qa.addr[c]), false});
                batch.push_back(
                    {qb.addr[c], t - leadToVxm(qb.addr[c]), false});
                batch.push_back(
                    {sq.addr[c], t + 3 - leadToVxm(sq.addr[c]),
                     false});
            }
            batch.push_back(
                {out_primary,
                 t + 8 +
                     Layout::transitDelay(vxm, out_primary.pos()),
                 true});
            if (tryReserveAll(batch))
                break;
            ++t;
        }
        for (int c = 0; c < 4; ++c) {
            reservedRead(qa.addr[c],
                         StreamRef{static_cast<StreamId>(8 + c), da},
                         vxm, t);
            reservedRead(qb.addr[c],
                         StreamRef{static_cast<StreamId>(12 + c),
                                   db},
                         vxm, t);
        }
        kb_.vxmBinary(en.aluBase + 0, Opcode::AddSat, DType::Int32,
                      StreamRef{8, da}, StreamRef{12, db},
                      r.stage3(0), t);
        // stage3 int32 -> fp32 -> x scale -> int8.
        kb_.vxmConvert(en.aluBase + 1, DType::Int32, DType::Fp32,
                       r.stage3(0), r.stage1(0), t + 1);
        for (int c = 0; c < 4; ++c)
            reservedRead(sq.addr[c], r.scale(c), vxm, t + 3);
        // (Scale reads were reserved in the combine batch above.)
        kb_.vxmBinary(en.aluBase + 2, Opcode::Mul, DType::Fp32,
                      r.stage1(0), r.scale(0), r.stage2(0), t + 3);
        kb_.vxmConvert(en.aluBase + 3, DType::Fp32, DType::Int8,
                       r.stage2(0), r.stageInt8(), t + 5);
        kb_.vxmBinary(en.aluBase + 4, Opcode::Max, DType::Int8,
                      r.stageInt8(), r.stageInt8(), r.finalOwn(),
                      t + 7);
        const Cycle vis = t + 8;

        const Cycle wi =
            vis + Layout::transitDelay(vxm, out_primary.pos());
        reservedWrite(out_primary, r.finalOwn(), wi);
        (*out.ready[0])[static_cast<std::size_t>(
            out.t.localRow(0, 0, 0, kg))] = wi + 1;
        setGlobalChain(t + 8);
    }
    recordLayer("gap", layer_begin);
    return out;
}

} // namespace tsp
