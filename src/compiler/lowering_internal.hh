/**
 * @file
 * Definitions shared by the lowering translation units (lowering.cc,
 * lowering_eltwise.cc): per-engine scheduling state, the fixed stream
 * role map, and placed-convolution bookkeeping. Not part of the
 * public compiler interface.
 */

#ifndef TSP_COMPILER_LOWERING_INTERNAL_HH
#define TSP_COMPILER_LOWERING_INTERNAL_HH

#include "compiler/lowering.hh"
#include "mxm/mxm_plane.hh"

namespace tsp {

/** Stream-id roles for one engine (see lowering.hh header comment). */
struct StreamRoles
{
    Direction toMxm{};   ///< Weights and activations flow this way.
    Direction fromMxm{}; ///< Results, consts, chain stages, outputs.

    StreamRef
    weight(int j) const
    {
        return {static_cast<StreamId>(j), toMxm};
    }
    StreamRef
    act(int pi) const
    {
        return {static_cast<StreamId>(16 + pi), toMxm};
    }
    /**
     * Final results flow *toward* the engine's own hemisphere (a
     * direction flip at the VXM), so every tensor lives on its
     * engine's side and reads never cross the bisection on another
     * engine's stream ids.
     */
    StreamRef
    finalOwn() const
    {
        return {29, toMxm};
    }
    /** Halo duplicates flow to the opposite hemisphere. */
    StreamRef
    haloOut() const
    {
        return {30, fromMxm};
    }
    StreamRef
    bias(int k) const
    {
        return {static_cast<StreamId>(0 + k), fromMxm};
    }
    StreamRef
    scale(int k) const
    {
        return {static_cast<StreamId>(4 + k), fromMxm};
    }
    StreamRef
    stage1(int k) const ///< AddSat out (int32) and friends.
    {
        return {static_cast<StreamId>(8 + k), fromMxm};
    }
    StreamRef
    stage2(int k) const ///< int32 -> fp32 stage.
    {
        return {static_cast<StreamId>(12 + k), fromMxm};
    }
    StreamRef
    result(int pi, int k) const ///< MXM ACC output (SG4).
    {
        return {static_cast<StreamId>(16 + 4 * pi + k), fromMxm};
    }
    StreamRef
    stage3(int k) const ///< x scale stage (fp32).
    {
        return {static_cast<StreamId>(24 + k), fromMxm};
    }
    StreamRef
    stageInt8() const
    {
        return {28, fromMxm};
    }
    StreamRef
    finalOut() const
    {
        return {29, fromMxm};
    }
};

/** Per-hemisphere-engine scheduling state. */
struct Lowering::Engine
{
    int idx = 0; ///< 0 = west, 1 = east.
    Hemisphere hem{};
    int planes[2] = {0, 1};
    SlicePos mxmPos = 0;
    int aluBase = 0; ///< First of 8 VXM ALUs owned.
    StreamRoles roles{};

    Cycle installFree = 0; ///< Weight streams + LW sequencer resource.
    Cycle chainFree = 0;   ///< VXM chain next-free (VXM-arrival time).
    /**
     * Last chain-ALU op cycle + 1. A user whose stage layout differs
     * from the previous user's (chainSig) must gate on this instead
     * of chainFree — identical layouts interleave stage-disjoint,
     * different ones would collide on the stage ALUs.
     */
    Cycle chainTail = 0;
    int chainSig = -1;
    Cycle planeFree[2] = {0, 0}; ///< Earliest next window start.
    Cycle windowEnd[2] = {0, 0}; ///< End of last ABC on the plane.

    GlobalAddr padZero[2];   ///< Per-plane zero padding vector.
    GlobalAddr padNeg128[3]; ///< Max-pool padding vectors.
    ConstQuad zeroQuad{};    ///< int32 zeros (eltwise seeds).
};

/** Placed weights + constants of one conv layer. */
struct Lowering::PlacedConv
{
    ConvGeom g{};
    int outC = 0;
    int inC = 0;
    int kgIn = 0;
    int cogOut = 0;
    /** tiles[e][cog * windows + w], w = (ky*kw + kx)*kgIn + kg. */
    std::vector<WeightTile> tiles[2];
    std::vector<ConstQuad> bias[2];  ///< Per cog.
    std::vector<ConstQuad> scale[2]; ///< Per cog.

    int
    windows() const
    {
        return g.kh * g.kw * kgIn;
    }
};

} // namespace tsp

#endif // TSP_COMPILER_LOWERING_INTERNAL_HH
