/**
 * @file
 * The DMA manifest: initial SRAM contents (weights, biases, scales,
 * constant pads, input activations) that the host emplaces over PCIe
 * before kicking off execution (paper II item 6: "a lightweight DMA
 * engine to emplace a model onto the TSP memory").
 */

#ifndef TSP_COMPILER_HOST_IMAGE_HH
#define TSP_COMPILER_HOST_IMAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/addr.hh"

namespace tsp {

class Chip;

/** Words the host DMA writes before program start. */
class HostImage
{
  public:
    /** One 320-byte word destined for one address. */
    struct Entry
    {
        GlobalAddr addr;
        std::array<std::uint8_t, kLanes> bytes;
    };

    /** Queues a full 320-byte word. */
    void add(const GlobalAddr &addr,
             const std::array<std::uint8_t, kLanes> &bytes);

    /** Queues a word whose 320 lanes are the given int8 values. */
    void addInt8(const GlobalAddr &addr, const std::int8_t *values,
                 int count);

    /**
     * Queues a quad of words carrying one int32 per lane across four
     * consecutive addresses (a ConstQuad's backing data).
     */
    void addInt32Quad(const GlobalAddr quad[4],
                      const std::int32_t *values, int count);

    /** Queues a quad of words carrying one fp32 per lane. */
    void addFp32Quad(const GlobalAddr quad[4], const float *values,
                     int count);

    /** @return queued entries. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** @return total bytes to transfer (PCIe model input). */
    std::size_t
    totalBytes() const
    {
        return entries_.size() * kLanes;
    }

    /** Writes every entry into @p chip via backdoor DMA. */
    void applyTo(Chip &chip) const;

  private:
    std::vector<Entry> entries_;
};

} // namespace tsp

#endif // TSP_COMPILER_HOST_IMAGE_HH
