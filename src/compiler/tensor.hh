/**
 * @file
 * Compiler-visible tensor placements.
 *
 * Activations are stored as rows of 320-byte vectors: one vector holds
 * up to 320 channels of one spatial position; deeper layers use
 * several channel groups (kg) per position. A tensor is split across
 * the hemispheres by image row (y) so both MXM hemispheres compute in
 * parallel (paper IV: four simultaneous conv2d), and each side stores
 * `halo` extra boundary rows of the other side's data so spatially
 * windowed consumers (3x3/7x7 conv, pooling) never touch the slices
 * the other hemisphere's engine is streaming from — the placement
 * discipline of paper IV.A, where the compiler lays out operands to
 * guarantee conflict-free concurrency.
 *
 * Within a part, rows are striped round-robin across a contiguous
 * range of slices, trading placement freedom for read concurrency.
 */

#ifndef TSP_COMPILER_TENSOR_HH
#define TSP_COMPILER_TENSOR_HH

#include <algorithm>

#include "compiler/mem_alloc.hh"

namespace tsp {

/** Rows striped across a contiguous range of slices in one hemisphere. */
struct StripedTensor
{
    Hemisphere hem = Hemisphere::West;
    int firstSlice = 0;
    int nSlices = 1;
    MemAddr base = 0;
    int rows = 0;

    /** @return address of row @p r. */
    GlobalAddr
    rowAddr(int r) const
    {
        return GlobalAddr{
            hem, firstSlice + r % nSlices,
            static_cast<MemAddr>(base + static_cast<MemAddr>(
                                            r / nSlices))};
    }

    /** @return words used per slice. */
    int
    wordsPerSlice() const
    {
        return (rows + nSlices - 1) / nSlices;
    }
};

/**
 * An int8 activation tensor [height x width x channel groups], split
 * by image row: the west half computes rows y < splitY, the east half
 * the rest. Each part *stores* its own rows plus up to `halo` rows
 * past the boundary (duplicated by the producer).
 *
 * Storage hemisphere note: a part's data lives wherever the producer
 * could write it — the part index is the *owning engine* (0 = west
 * engine, 1 = east engine), and part[i].hem records where the rows
 * physically are (they alternate across layers as results flow
 * through the VXM).
 */
struct ActTensor
{
    int height = 1;
    int width = 1;
    int kgCount = 1;
    int channels = 0; ///< Logical channel count (<= 320 * kgCount).
    int splitY = 0;   ///< West engine owns y < splitY.
    int halo = 0;     ///< Boundary rows duplicated on each side.

    StripedTensor part[2]; ///< [west engine, east engine].

    /** @return spatial positions. */
    int positions() const { return height * width; }

    /** @return last y (exclusive) stored by the west part. */
    int storedHiY() const { return std::min(height, splitY + halo); }

    /** @return first y stored by the east part. */
    int storedLoY() const { return std::max(0, splitY - halo); }

    /** @return true if engine part @p e (0/1) stores image row @p y. */
    bool
    stores(int e, int y) const
    {
        if (y < 0 || y >= height)
            return false;
        return e == 0 ? y < storedHiY() : y >= storedLoY();
    }

    /** @return local row index of (y, x, kg) within part @p e. */
    int
    localRow(int e, int y, int x, int kg) const
    {
        const int y0 = e == 0 ? y : y - storedLoY();
        return (y0 * width + x) * kgCount + kg;
    }

    /** @return address of (y, x, kg) in part @p e. */
    GlobalAddr
    addrOf(int e, int y, int x, int kg) const
    {
        return part[e].rowAddr(localRow(e, y, x, kg));
    }

    /** @return the engine that owns output row @p y. */
    int
    ownerOf(int y) const
    {
        return y < splitY ? 0 : 1;
    }

    /** @return rows of image owned by engine @p e. */
    int
    ownedRows(int e) const
    {
        return e == 0 ? splitY : height - splitY;
    }
};

/**
 * One up-to-320x320 weight tile striped across 16 consecutive
 * slices: row r (output channel) lives in slice firstSlice + r % 16
 * at address base + r / 16, so a 16-stream LW burst installs 16 rows
 * per cycle. Only ceil(rows / 16) row groups are stored and
 * installed — array rows past that hold stale weights whose outputs
 * land on channels the schedule never writes back (their downstream
 * weight columns are zero), so partial tiles are exact and save both
 * SRAM and install cycles.
 */
struct WeightTile
{
    Hemisphere hem = Hemisphere::West;
    int firstSlice = 0;
    MemAddr base = 0;
    int rows = kMxmDim; ///< Valid rows (output channels).

    static constexpr int kStripe = 16;

    /** @return number of 16-row LW bursts this tile installs. */
    int
    bursts() const
    {
        return (rows + kStripe - 1) / kStripe;
    }

    /** @return address of weight row @p r. */
    GlobalAddr
    rowAddr(int r) const
    {
        return GlobalAddr{
            hem, firstSlice + r % kStripe,
            static_cast<MemAddr>(base +
                                 static_cast<MemAddr>(r / kStripe))};
    }

    /** @return words used per slice. */
    int
    wordsPerSlice() const
    {
        return bursts();
    }
};

/**
 * A quad-stream constant: four 320-byte vectors (one int32/fp32 value
 * per lane) placed in four *distinct* slices so all four streams can
 * be re-read every cycle during a drain.
 */
struct ConstQuad
{
    GlobalAddr addr[4];
};

/**
 * Allocates a WeightTile of @p rows valid rows striped over 16
 * slices from @p first_slice.
 */
WeightTile allocWeightTile(MemAllocator &alloc, Hemisphere hem,
                           int first_slice, int rows = kMxmDim);

/** Allocates a ConstQuad in four consecutive slices from @p first. */
ConstQuad allocConstQuad(MemAllocator &alloc, Hemisphere hem,
                         int first_slice);

} // namespace tsp

#endif // TSP_COMPILER_TENSOR_HH
